/**
 * @file
 * Property tests for the DRAM channel model, run under every
 * ChannelInterleave mode (Line, Page, Frame).
 *
 * Randomized schedules of line accesses and page bulk copies check the
 * invariants the timing model must uphold regardless of interleave:
 *
 *  - channel bus exclusivity: the data-bus occupancy intervals of all
 *    bursts and bulk copies touching one channel never overlap;
 *  - latency floor: no access completes faster than the best case
 *    (row hit + burst), and latency histograms record every request;
 *  - conservation: every issued request completes exactly once and the
 *    per-channel stats slices merge to the issued totals;
 *  - FR-FCFS precedence: among ready requests the oldest row hit
 *    dispatches first, else the oldest request overall.
 *
 * The test re-derives (channel, bank, row) with its own copy of the
 * interleave math so the directed FR-FCFS cases can construct same-bank
 * conflicts in any mode; the reference decode is cross-checked against
 * DramModel::channelOf on random addresses first.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "dram/dram.h"
#include "engine/event_queue.h"

namespace mosaic {
namespace {

DramConfig
testConfig(ChannelInterleave mode)
{
    DramConfig c;
    c.channels = 3;  // odd, so Line/Page/Frame map addresses differently
    c.channelInterleave = mode;
    c.banksPerChannel = 2;
    c.rowBytes = 512;  // 4 lines per row
    c.rowHitCycles = 10;
    c.rowMissCycles = 40;
    c.bankBusyHitCycles = 2;
    c.bankBusyMissCycles = 20;
    c.burstCycles = 2;
    return c;
}

struct Decoded
{
    unsigned channel;
    unsigned bank;
    std::uint64_t row;
};

/** Reference reimplementation of the model's address interleave. */
Decoded
refDecode(const DramConfig &cfg, Addr addr)
{
    const std::uint64_t line = addr / kCacheLineSize;
    unsigned channel = 0;
    std::uint64_t idx = 0;
    switch (cfg.channelInterleave) {
    case ChannelInterleave::Line:
        channel = line % cfg.channels;
        idx = line / cfg.channels;
        break;
    case ChannelInterleave::Page: {
        const std::uint64_t page = addr / kBasePageSize;
        const std::uint64_t lines_per_page = kBasePageSize / kCacheLineSize;
        channel = page % cfg.channels;
        idx = (page / cfg.channels) * lines_per_page +
              (line % lines_per_page);
        break;
    }
    case ChannelInterleave::Frame: {
        const std::uint64_t frame = addr / kLargePageSize;
        const std::uint64_t lines_per_frame = kLargePageSize / kCacheLineSize;
        channel = frame % cfg.channels;
        idx = (frame / cfg.channels) * lines_per_frame +
              (line % lines_per_frame);
        break;
    }
    }
    const std::uint64_t lines_per_row = cfg.rowBytes / kCacheLineSize;
    const std::uint64_t row_seq = idx / lines_per_row;
    return Decoded{channel, static_cast<unsigned>(row_seq %
                                                  cfg.banksPerChannel),
                   row_seq / cfg.banksPerChannel};
}

/** First line-aligned address matching (channel, bank, row), skipping
 *  any address in @p avoid. */
Addr
findAddr(const DramConfig &cfg, unsigned channel, unsigned bank,
         std::uint64_t row, const std::vector<Addr> &avoid = {})
{
    for (std::uint64_t line = 0; line < 1u << 20; ++line) {
        const Addr addr = line * kCacheLineSize;
        const Decoded d = refDecode(cfg, addr);
        if (d.channel == channel && d.bank == bank && d.row == row &&
            std::find(avoid.begin(), avoid.end(), addr) == avoid.end())
            return addr;
    }
    ADD_FAILURE() << "no address maps to channel " << channel << " bank "
                  << bank << " row " << row;
    return 0;
}

const ChannelInterleave kModes[] = {ChannelInterleave::Line,
                                    ChannelInterleave::Page,
                                    ChannelInterleave::Frame};

const char *
modeName(ChannelInterleave mode)
{
    switch (mode) {
    case ChannelInterleave::Line: return "Line";
    case ChannelInterleave::Page: return "Page";
    case ChannelInterleave::Frame: return "Frame";
    }
    return "?";
}

TEST(DramChannelPropertyTest, ReferenceDecodeMatchesModel)
{
    Rng rng(0xDEC0DEull);
    for (ChannelInterleave mode : kModes) {
        const DramConfig cfg = testConfig(mode);
        EventQueue ev;
        DramModel dram(ev, cfg);
        for (int i = 0; i < 1000; ++i) {
            const Addr addr =
                rng.below(64 * kLargePageSize) / kCacheLineSize *
                kCacheLineSize;
            EXPECT_EQ(refDecode(cfg, addr).channel, dram.channelOf(addr))
                << modeName(mode) << " addr " << addr;
        }
    }
}

/** One completed bus occupancy: [done - duration, done) on a channel. */
struct BusInterval
{
    Cycles start;
    Cycles end;
};

void
expectChannelExclusive(std::vector<std::vector<BusInterval>> &perChannel,
                       ChannelInterleave mode)
{
    for (std::size_t c = 0; c < perChannel.size(); ++c) {
        auto &iv = perChannel[c];
        std::sort(iv.begin(), iv.end(),
                  [](const BusInterval &a, const BusInterval &b) {
                      return a.start < b.start;
                  });
        for (std::size_t i = 1; i < iv.size(); ++i) {
            EXPECT_GE(iv[i].start, iv[i - 1].end)
                << modeName(mode) << " channel " << c
                << ": bus bursts overlap ([" << iv[i - 1].start << ", "
                << iv[i - 1].end << ") vs [" << iv[i].start << ", "
                << iv[i].end << "))";
        }
    }
}

TEST(DramChannelPropertyTest, RandomAccessesKeepChannelInvariants)
{
    for (ChannelInterleave mode : kModes) {
        const DramConfig cfg = testConfig(mode);
        EventQueue ev;
        DramModel dram(ev, cfg);
        Rng rng(0xACCE55ull + static_cast<std::uint64_t>(mode));

        const int kOps = 500;
        int completed = 0;
        std::uint64_t reads = 0, writes = 0;
        std::vector<std::vector<BusInterval>> busy(cfg.channels);
        std::vector<Cycles> latencies;

        for (int i = 0; i < kOps; ++i) {
            // Cluster addresses over a few rows per bank so the schedule
            // mixes row hits, conflicts, and bank contention.
            const Addr addr = rng.below(16 * kBasePageSize) /
                              kCacheLineSize * kCacheLineSize;
            const bool is_write = rng.chance(0.25);
            const Cycles at = rng.below(2000);
            is_write ? ++writes : ++reads;
            ev.schedule(at, [&, addr, is_write] {
                const Cycles issued = ev.now();
                const unsigned channel = dram.channelOf(addr);
                dram.access(addr, is_write, [&, issued, channel] {
                    const Cycles done = ev.now();
                    ++completed;
                    latencies.push_back(done - issued);
                    busy[channel].push_back(
                        BusInterval{done - cfg.burstCycles, done});
                });
            });
        }
        ev.runAll();

        EXPECT_EQ(completed, kOps) << modeName(mode);
        EXPECT_EQ(dram.inFlight(), 0u) << modeName(mode);

        const DramModel::Stats stats = dram.stats();
        EXPECT_EQ(stats.reads, reads) << modeName(mode);
        EXPECT_EQ(stats.writes, writes) << modeName(mode);
        EXPECT_EQ(stats.rowHits + stats.rowMisses, reads + writes)
            << modeName(mode) << ": every dispatch is a hit or a miss";

        // Latency floor: nothing beats an immediate row hit + burst.
        const Cycles floor = cfg.rowHitCycles + cfg.burstCycles;
        for (Cycles lat : latencies)
            EXPECT_GE(lat, floor) << modeName(mode);

        expectChannelExclusive(busy, mode);
    }
}

TEST(DramChannelPropertyTest, BulkCopiesShareTheBusExclusively)
{
    for (ChannelInterleave mode : kModes) {
        const DramConfig cfg = testConfig(mode);
        EventQueue ev;
        DramModel dram(ev, cfg);
        Rng rng(0xC0B7ull + static_cast<std::uint64_t>(mode));

        int completed = 0;
        std::uint64_t copies = 0, copy_cycles = 0;
        std::vector<std::vector<BusInterval>> busy(cfg.channels);

        const int kOps = 300;
        for (int i = 0; i < kOps; ++i) {
            const Cycles at = rng.below(4000);
            if (rng.chance(0.2)) {
                const Addr src = rng.below(64) * kBasePageSize;
                const Addr dst = rng.below(64) * kBasePageSize;
                const bool in_dram = rng.chance(0.5);
                ++copies;
                copy_cycles += dram.bulkCopyCycles(src, dst, in_dram);
                ev.schedule(at, [&, src, dst, in_dram] {
                    const Cycles duration =
                        dram.bulkCopyCycles(src, dst, in_dram);
                    const unsigned src_ch = dram.channelOf(src);
                    const unsigned dst_ch = dram.channelOf(dst);
                    dram.bulkCopyPage(src, dst, in_dram,
                                      [&, duration, src_ch, dst_ch] {
                        const Cycles done = ev.now();
                        ++completed;
                        busy[dst_ch].push_back(
                            BusInterval{done - duration, done});
                        if (src_ch != dst_ch)
                            busy[src_ch].push_back(
                                BusInterval{done - duration, done});
                    });
                });
            } else {
                const Addr addr = rng.below(16 * kBasePageSize) /
                                  kCacheLineSize * kCacheLineSize;
                const bool is_write = rng.chance(0.25);
                ev.schedule(at, [&, addr, is_write] {
                    const unsigned channel = dram.channelOf(addr);
                    dram.access(addr, is_write, [&, channel] {
                        const Cycles done = ev.now();
                        ++completed;
                        busy[channel].push_back(
                            BusInterval{done - cfg.burstCycles, done});
                    });
                });
            }
        }
        ev.runAll();

        EXPECT_EQ(completed, kOps) << modeName(mode);
        EXPECT_EQ(dram.inFlight(), 0u) << modeName(mode);
        EXPECT_EQ(dram.stats().bulkCopies, copies) << modeName(mode);
        EXPECT_EQ(dram.stats().bulkCopyCycles, copy_cycles)
            << modeName(mode);

        expectChannelExclusive(busy, mode);
    }
}

TEST(DramChannelPropertyTest, FrFcfsPrefersReadyRowHitInEveryMode)
{
    for (ChannelInterleave mode : kModes) {
        const DramConfig cfg = testConfig(mode);
        // Same channel, same bank: prime opens row 0; the younger row-0
        // request must overtake the older row-1 conflict once the bank
        // frees up.
        const Addr prime = findAddr(cfg, 0, 0, 0);
        const Addr conflict = findAddr(cfg, 0, 0, 1);
        const Addr hit = findAddr(cfg, 0, 0, 0, {prime});
        ASSERT_EQ(refDecode(cfg, hit).row, refDecode(cfg, prime).row);
        ASSERT_NE(hit, prime);

        EventQueue ev;
        DramModel dram(ev, cfg);
        Cycles conflict_done = 0, hit_done = 0;
        dram.access(prime, false, [] {});
        dram.access(conflict, false, [&] { conflict_done = ev.now(); });
        dram.access(hit, false, [&] { hit_done = ev.now(); });
        ev.runAll();

        EXPECT_LT(hit_done, conflict_done)
            << modeName(mode) << ": ready row hit must dispatch before "
            << "the older row conflict";
        EXPECT_EQ(dram.stats().rowHits, 1u) << modeName(mode);
    }
}

TEST(DramChannelPropertyTest, FrFcfsFallsBackToOldestInEveryMode)
{
    for (ChannelInterleave mode : kModes) {
        const DramConfig cfg = testConfig(mode);
        // Three different rows on one bank: no hits anywhere, so pure
        // arrival order must win.
        const Addr a = findAddr(cfg, 0, 0, 0);
        const Addr b = findAddr(cfg, 0, 0, 1);
        const Addr c = findAddr(cfg, 0, 0, 2);

        EventQueue ev;
        DramModel dram(ev, cfg);
        Cycles b_done = 0, c_done = 0;
        dram.access(a, false, [] {});
        dram.access(b, false, [&] { b_done = ev.now(); });
        dram.access(c, false, [&] { c_done = ev.now(); });
        ev.runAll();

        EXPECT_LT(b_done, c_done)
            << modeName(mode) << ": with no row hits the oldest queued "
            << "request dispatches first";
        EXPECT_EQ(dram.stats().rowHits, 0u) << modeName(mode);
        EXPECT_EQ(dram.stats().rowMisses, 3u) << modeName(mode);
    }
}

}  // namespace
}  // namespace mosaic
