/** @file Unit tests for the DRAM model and FR-FCFS scheduler. */

#include <gtest/gtest.h>

#include "dram/dram.h"
#include "engine/event_queue.h"

namespace mosaic {
namespace {

DramConfig
testConfig()
{
    DramConfig c;
    c.channels = 2;
    c.banksPerChannel = 2;
    c.rowBytes = 512;  // 4 lines per row
    c.rowHitCycles = 10;
    c.rowMissCycles = 40;
    c.bankBusyHitCycles = 2;
    c.bankBusyMissCycles = 20;
    c.burstCycles = 2;
    return c;
}

TEST(DramTest, SingleAccessCompletesWithMissLatency)
{
    EventQueue ev;
    DramModel dram(ev, testConfig());
    Cycles done = 0;
    dram.access(0, false, [&] { done = ev.now(); });
    ev.runAll();
    // Cold access: row miss (40) + burst (2).
    EXPECT_EQ(done, 42u);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    EXPECT_EQ(dram.stats().reads, 1u);
}

TEST(DramTest, RowHitIsFasterThanRowMiss)
{
    EventQueue ev;
    DramModel dram(ev, testConfig());
    Cycles first = 0, second = 0;
    dram.access(0, false, [&] { first = ev.now(); });
    ev.runAll();
    // Same line again: open row.
    dram.access(0, false, [&] { second = ev.now(); });
    ev.runAll();
    EXPECT_LT(second - first, first);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(DramTest, ChannelsInterleaveByLine)
{
    DramConfig cfg = testConfig();
    EventQueue ev;
    DramModel dram(ev, cfg);
    EXPECT_EQ(dram.channelOf(0), 0u);
    EXPECT_EQ(dram.channelOf(kCacheLineSize), 1u);
    EXPECT_EQ(dram.channelOf(2 * kCacheLineSize), 0u);
}

TEST(DramTest, IndependentChannelsOverlap)
{
    EventQueue ev;
    DramModel dram(ev, testConfig());
    Cycles done_a = 0, done_b = 0;
    dram.access(0, false, [&] { done_a = ev.now(); });
    dram.access(kCacheLineSize, false, [&] { done_b = ev.now(); });
    ev.runAll();
    // Different channels: both finish at the cold-miss time.
    EXPECT_EQ(done_a, 42u);
    EXPECT_EQ(done_b, 42u);
}

TEST(DramTest, FrFcfsPrefersRowHitOverOlderConflict)
{
    DramConfig cfg = testConfig();
    EventQueue ev;
    DramModel dram(ev, cfg);

    // Channel-0 bank-0 geometry: in-channel index idx = line/2; rows
    // hold 4 indices, banks interleave by row, so bank 0 covers rows
    // with even row_seq: idx 0..3 -> row 0, idx 8..11 -> row 2, etc.
    // All three addresses below live on channel 0.
    auto addr_of_idx = [](std::uint64_t idx) {
        return static_cast<Addr>(idx) * 2 * kCacheLineSize;
    };

    // (a) dispatches immediately (row 2 conflict) and leaves the bank
    // busy; (b) and (c) queue up behind it. When the bank frees, FR-FCFS
    // must pick (c), the younger row-2 hit, before (b)'s conflict.
    Cycles b_done = 0, c_done = 0;
    dram.access(addr_of_idx(8), false, [] {});            // (a) row 2
    dram.access(addr_of_idx(16), false,                   // (b) row 4
                [&] { b_done = ev.now(); });
    dram.access(addr_of_idx(9), false,                    // (c) row 2 hit
                [&] { c_done = ev.now(); });
    ev.runAll();
    EXPECT_LT(c_done, b_done);
}

TEST(DramTest, BulkCopyInDramIsFast)
{
    EventQueue ev;
    DramConfig cfg = testConfig();
    DramModel dram(ev, cfg);
    Cycles done = 0;
    // Same page-channel source and destination.
    dram.bulkCopyPage(0, 2 * cfg.channels * kLargePageSize, true,
                      [&] { done = ev.now(); });
    ev.runAll();
    EXPECT_EQ(done, cfg.bulkCopyInDramCycles);
    EXPECT_EQ(dram.stats().bulkCopies, 1u);
}

TEST(DramTest, BulkCopyViaBusIsSlow)
{
    EventQueue ev;
    DramConfig cfg = testConfig();
    DramModel dram(ev, cfg);
    Cycles done = 0;
    dram.bulkCopyPage(0, 2 * cfg.channels * kLargePageSize, false,
                      [&] { done = ev.now(); });
    ev.runAll();
    const Cycles expected =
        (kBasePageSize / kCacheLineSize) * cfg.bulkCopyViaBusCyclesPerLine;
    EXPECT_EQ(done, expected);
}

TEST(DramTest, BulkCopyOccupiesChannelBus)
{
    EventQueue ev;
    DramConfig cfg = testConfig();
    DramModel dram(ev, cfg);
    Cycles copy_done = 0, access_done = 0;
    dram.bulkCopyPage(0, 2 * cfg.channels * kLargePageSize, false,
                      [&] { copy_done = ev.now(); });
    // An access to the destination channel must wait for the bus.
    dram.access(0, false, [&] { access_done = ev.now(); });
    ev.runAll();
    EXPECT_GT(access_done, copy_done);
}

TEST(DramTest, CrossChannelBulkCopyWaitsForSourceBus)
{
    EventQueue ev;
    DramConfig cfg = testConfig();
    DramModel dram(ev, cfg);
    const Cycles via_bus =
        (kBasePageSize / kCacheLineSize) * cfg.bulkCopyViaBusCyclesPerLine;

    // First copy: channel 0 -> channel 0 via the bus, occupying the
    // channel-0 bus for [0, via_bus).
    Cycles first_done = 0, second_done = 0;
    dram.bulkCopyPage(0, 2 * cfg.channels * kLargePageSize, false,
                      [&] { first_done = ev.now(); });
    // Second copy: channel 0 -> channel 1. The destination bus is idle,
    // but the *source* bus is mid-copy: the cross-channel copy streams
    // reads off it, so it cannot start before via_bus. (Pre-fix, the
    // start cycle only consulted the destination bus and this copy
    // finished at via_bus, overlapping the source bus.)
    dram.bulkCopyPage(0, kCacheLineSize, true,
                      [&] { second_done = ev.now(); });
    ev.runAll();
    EXPECT_EQ(first_done, via_bus);
    EXPECT_EQ(second_done, 2 * via_bus);
}

TEST(DramTest, EarlierRetryReschedulesPendingLaterRetry)
{
    // Two banks with long conflict occupancy: bank 1 is primed early
    // (frees at 100), bank 0 late (frees at 160). A request blocked on
    // bank 0 schedules a retry at 160; a younger request blocked on
    // bank 1 then asks for a retry at 100. The old bare "scheduled"
    // flag dropped the earlier request and the bank-1 hit sat idle
    // until cycle 160.
    DramConfig cfg = testConfig();
    cfg.rowMissCycles = 12;
    cfg.bankBusyMissCycles = 100;
    EventQueue ev;
    DramModel dram(ev, cfg);

    // Channel-0 geometry (see FrFcfsPrefersRowHitOverOlderConflict):
    // idx = line/2, 4 idx per row, banks interleave by row_seq, so
    // idx 4..7 -> bank 1 row 1, idx 8..11 -> bank 0 row 2, idx 16..19
    // -> bank 0 row 4.
    auto addr_of_idx = [](std::uint64_t idx) {
        return static_cast<Addr>(idx) * 2 * kCacheLineSize;
    };

    Cycles b_done = 0, d_done = 0;
    dram.access(addr_of_idx(4), false, [] {});  // prime bank 1, row 1
    ev.schedule(60, [&] {
        dram.access(addr_of_idx(8), false, [] {});  // bank 0, row 2
    });
    ev.schedule(61, [&] {
        // Blocked on bank 0 (busy until 160): retry scheduled at 160.
        dram.access(addr_of_idx(16), false, [&] { b_done = ev.now(); });
    });
    ev.schedule(62, [&] {
        // Row-1 hit blocked on bank 1 (busy until 100): requests a
        // retry at 100, which must supersede the pending one at 160.
        dram.access(addr_of_idx(5), false, [&] { d_done = ev.now(); });
    });
    ev.runAll();
    // Hit dispatches at 100: data ready 110, burst waits for the
    // channel bus (free at 74) -> done 112. Pre-fix it dispatched only
    // when the stale 160 retry fired, finishing at 172.
    EXPECT_EQ(d_done, 112u);
    // The bank-0 conflict is untouched either way: dispatch 160,
    // data ready 172, done 174.
    EXPECT_EQ(b_done, 174u);
}

TEST(DramTest, ManyAccessesAllComplete)
{
    EventQueue ev;
    DramModel dram(ev, testConfig());
    int completed = 0;
    const int total = 500;
    for (int i = 0; i < total; ++i)
        dram.access(static_cast<Addr>(i) * kCacheLineSize, i % 3 == 0,
                    [&] { ++completed; });
    ev.runAll();
    EXPECT_EQ(completed, total);
    EXPECT_EQ(dram.inFlight(), 0u);
    EXPECT_EQ(dram.stats().reads + dram.stats().writes,
              static_cast<std::uint64_t>(total));
}

TEST(DramTest, LatencyHistogramTracksAllRequests)
{
    EventQueue ev;
    DramModel dram(ev, testConfig());
    for (int i = 0; i < 20; ++i)
        dram.access(static_cast<Addr>(i) * 64 * kCacheLineSize, false, [] {});
    ev.runAll();
    EXPECT_EQ(dram.stats().latency.samples(), 20u);
    EXPECT_GE(dram.stats().latency.mean(), 10.0);
}

}  // namespace
}  // namespace mosaic
