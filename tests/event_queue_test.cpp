/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/event_queue.h"

namespace mosaic {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, SameTimeEventsRunInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(2, [&] {
            ++fired;
            q.scheduleAfter(3, [&] { ++fired; });
        });
    });
    q.runAll();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Cycles seen = 0;
    q.schedule(100, [&] { q.scheduleAfter(50, [&] { seen = q.now(); }); });
    q.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueueTest, ExecutedCountsEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(static_cast<Cycles>(i), [] {});
    q.runAll();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueTest, ReserveGrowsCapacityWithoutChangingBehavior)
{
    EventQueue q;
    q.reserve(4096);
    EXPECT_GE(q.capacity(), 4096u);
    const std::size_t reserved = q.capacity();
    std::vector<int> order;
    for (int i = 99; i >= 0; --i)
        q.schedule(static_cast<Cycles>(i), [&order, i] { order.push_back(i); });
    EXPECT_EQ(q.capacity(), reserved);  // no reallocation under the hint
    q.runAll();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, MovePopKeepsHeapCapturedCallbacksIntact)
{
    // Callbacks whose captures exceed std::function's small-buffer size
    // exercise the move-out-of-top dispatch path: the moved-from
    // function left in the heap must never be invoked, and the heap
    // order must survive the sift-down over a moved-from element.
    EventQueue q;
    std::uint64_t sum = 0;
    struct Fat
    {
        std::uint64_t *sink;
        std::uint64_t a, b, c;
    };
    for (std::uint64_t i = 0; i < 200; ++i) {
        const Fat fat{&sum, i, 1000, 1};
        // Reverse time order forces maximal sifting on every pop.
        q.schedule(static_cast<Cycles>(200 - i),
                   [fat] { *fat.sink += fat.a + fat.b + fat.c; });
    }
    q.runAll();
    // sum of (i + 1001) for i in [0, 200)
    EXPECT_EQ(sum, 199u * 200u / 2u + 200u * 1001u);
    EXPECT_EQ(q.executed(), 200u);
}

TEST(EventQueueTest, RunUntilInterleavesWithRescheduling)
{
    EventQueue q;
    std::vector<Cycles> fired;
    std::function<void()> tick = [&] {
        fired.push_back(q.now());
        if (q.now() < 100)
            q.scheduleAfter(10, tick);
    };
    q.schedule(0, tick);
    q.runUntil(55);
    EXPECT_EQ(fired, (std::vector<Cycles>{0, 10, 20, 30, 40, 50}));
    EXPECT_EQ(q.now(), 55u);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(200);
    EXPECT_EQ(fired.back(), 100u);
    EXPECT_EQ(q.now(), 200u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

}  // namespace
}  // namespace mosaic
