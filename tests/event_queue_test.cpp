/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <vector>

#include "engine/event_queue.h"

namespace mosaic {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroAndEmpty)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, SameTimeEventsRunInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(2, [&] {
            ++fired;
            q.scheduleAfter(3, [&] { ++fired; });
        });
    });
    q.runAll();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Cycles seen = 0;
    q.schedule(100, [&] { q.scheduleAfter(50, [&] { seen = q.now(); }); });
    q.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueueTest, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueueTest, ExecutedCountsEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(static_cast<Cycles>(i), [] {});
    q.runAll();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(5, [] {}), "past");
}

}  // namespace
}  // namespace mosaic
