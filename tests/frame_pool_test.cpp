/** @file Unit tests for physical frame bookkeeping. */

#include <gtest/gtest.h>

#include "mm/frame_pool.h"

namespace mosaic {
namespace {

TEST(FramePoolTest, GeometryAndAddressing)
{
    FramePool pool(0, 16 * kLargePageSize);
    EXPECT_EQ(pool.numFrames(), 16u);
    EXPECT_EQ(pool.frameBase(3), 3 * kLargePageSize);
    EXPECT_EQ(pool.frameIndex(3 * kLargePageSize + 123), 3u);
    EXPECT_EQ(pool.slotAddr(2, 5), 2 * kLargePageSize + 5 * kBasePageSize);
}

TEST(FramePoolTest, AllocateAndFreeSlots)
{
    FramePool pool(0, 4 * kLargePageSize);
    pool.allocateSlot(1, 7, /*app=*/2, /*va=*/0x1000);
    const FrameInfo &f = pool.frame(1);
    EXPECT_EQ(f.owner, 2);
    EXPECT_EQ(f.usedCount, 1u);
    EXPECT_TRUE(f.used[7]);
    EXPECT_EQ(f.slotVa[7], 0x1000u);
    EXPECT_EQ(pool.allocatedPages(), 1u);

    pool.freeSlot(1, 7);
    EXPECT_EQ(pool.frame(1).usedCount, 0u);
    EXPECT_EQ(pool.allocatedPages(), 0u);
    // Owner survives until explicitly reset.
    EXPECT_EQ(pool.frame(1).owner, 2);
    pool.resetOwner(1);
    EXPECT_EQ(pool.frame(1).owner, kInvalidAppId);
}

TEST(FramePoolTest, MixedFlagSetWhenSecondAppAllocates)
{
    FramePool pool(0, 4 * kLargePageSize);
    pool.allocateSlot(0, 0, 1, 0x1000);
    EXPECT_FALSE(pool.frame(0).mixed);
    pool.allocateSlot(0, 1, 2, 0x2000);
    EXPECT_TRUE(pool.frame(0).mixed);
}

TEST(FramePoolTest, FullyPopulatedAndFreeSlots)
{
    FramePool pool(0, 2 * kLargePageSize);
    for (unsigned s = 0; s < kBasePagesPerLargePage; ++s)
        pool.allocateSlot(0, s, 1, 0x100000 + s * kBasePageSize);
    EXPECT_TRUE(pool.frame(0).fullyPopulated());
    EXPECT_EQ(pool.frame(0).freeSlots(), 0u);
    EXPECT_FALSE(pool.frame(1).fullyPopulated());
    EXPECT_EQ(pool.frame(1).freeSlots(), kBasePagesPerLargePage);
}

TEST(FramePoolTest, PinFragmentsOccupiesSlots)
{
    FramePool pool(0, 2 * kLargePageSize);
    Rng rng(3);
    pool.pinFragments(0, 100, rng);
    const FrameInfo &f = pool.frame(0);
    EXPECT_EQ(f.pinnedCount, 100u);
    EXPECT_EQ(f.pinned.count(), 100u);
    EXPECT_EQ(f.owner, kFragmentOwner);
    EXPECT_EQ(f.freeSlots(), kBasePagesPerLargePage - 100);
    EXPECT_FALSE(f.empty());
}

TEST(FramePoolDeathTest, DoubleAllocatePanics)
{
    FramePool pool(0, kLargePageSize);
    pool.allocateSlot(0, 0, 1, 0x1000);
    EXPECT_DEATH(pool.allocateSlot(0, 0, 1, 0x2000), "occupied");
}

TEST(FramePoolDeathTest, FreeOfFreeSlotPanics)
{
    FramePool pool(0, kLargePageSize);
    EXPECT_DEATH(pool.freeSlot(0, 0), "free");
}

TEST(FramePoolDeathTest, OutOfRangeAddressPanics)
{
    FramePool pool(kLargePageSize, kLargePageSize);
    EXPECT_DEATH(pool.frameIndex(0), "below");
    EXPECT_DEATH(pool.frameIndex(10 * kLargePageSize), "beyond");
}

}  // namespace
}  // namespace mosaic
