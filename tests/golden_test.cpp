/**
 * @file
 * Golden-output regression tests: byte-equality against checked-in
 * metrics snapshots.
 *
 * One small pinned configuration per manager kind (Mosaic, GPU-MMU,
 * 2MB-only) runs to completion; the full metrics-snapshot JSON
 * (runner/json_report.h, deterministic sorted paths) is compared
 * byte-for-byte with a golden file committed under tests/golden/.
 *
 * This locks the simulated *behavior* -- every counter, histogram
 * bucket, and cycle count -- so hot-path refactors (PR 5's pooled
 * continuations, flat radix walks, indexed TLB arrays) are diffed
 * against a recorded truth instead of ad-hoc A/B runs. The goldens in
 * tests/golden/ were generated from the pre-refactor build and must
 * keep passing on every later one.
 *
 * Regenerating (only when an *intentional* behavior change lands):
 *   MOSAIC_UPDATE_GOLDEN=1 ./build/tests/golden_test
 * then commit the rewritten files with an explanation of the diff.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "runner/json_report.h"
#include "runner/simulation.h"
#include "trace/trace_export.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

/** Directory of the golden files, baked in at compile time. */
std::string
goldenDir()
{
    return std::string(MOSAIC_GOLDEN_DIR);
}

/**
 * The pinned scenario: a deterministic two-app heterogeneous mix, small
 * enough to finish in seconds yet exercising the full translation spine
 * (TLB hierarchy, walker, demand paging, coalescing under Mosaic).
 * Frozen: any change here invalidates the goldens.
 */
Workload
pinnedWorkload()
{
    Workload w = scaledWorkload(heterogeneousWorkload(2, 42), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 300;
    return w;
}

SimConfig
pinnedConfig(SimConfig c)
{
    c.gpu.sm.warpsPerSm = 8;
    return c.withIoCompression(16.0);
}

/**
 * Normalizes the metrics document for stable storage: exact JSON bytes
 * plus a trailing newline (what writeMetricsJson emits). The JSON
 * itself is already deterministic -- sorted metric paths, fixed number
 * formatting -- so no field filtering is needed; totalCycles and every
 * counter ARE the regression surface.
 */
std::string
snapshotDocument(const SimConfig &config)
{
    const SimResult result = runSimulation(pinnedWorkload(), config);
    return metricsToJson(result, managerKindName(config.manager)) + "\n";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::string();
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
checkGoldenDocument(const std::string &doc, const std::string &name)
{
    const std::string path = goldenDir() + "/" + name + ".json";

    if (std::getenv("MOSAIC_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << doc;
        std::printf("golden updated: %s (%zu bytes)\n", path.c_str(),
                    doc.size());
        return;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << path
        << " (generate with MOSAIC_UPDATE_GOLDEN=1)";
    if (doc == golden)
        return;
    // Byte-inequality: locate the first divergence so the failure
    // message points at the drifted metric instead of dumping both
    // multi-KB documents.
    std::size_t at = 0;
    while (at < doc.size() && at < golden.size() && doc[at] == golden[at])
        ++at;
    const std::size_t from = at < 80 ? 0 : at - 80;
    FAIL() << name << " golden document diverged from " << path
           << " at byte " << at << "\n  golden: ..."
           << golden.substr(from, 160) << "\n  actual: ..."
           << doc.substr(from, 160);
}

void
checkGolden(const SimConfig &config, const std::string &name)
{
    checkGoldenDocument(snapshotDocument(config), name);
}

TEST(GoldenTest, MosaicSnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::mosaicDefault()), "mosaic");
}

TEST(GoldenTest, GpuMmuSnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::baseline()), "gpu_mmu");
}

TEST(GoldenTest, LargeOnlySnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::largeOnly()), "large_only");
}

/**
 * Sharded-engine goldens (DESIGN.md §12). The sharded engine is a
 * distinct timing model -- completion deliveries drift by at most one
 * epoch window relative to the serial engine -- so it gets its own
 * golden per manager. Worker-count independence (N=1 vs N in {2,4,8})
 * is covered by shard_test.cpp; together with these goldens that pins
 * every shard count to the same recorded truth.
 */
TEST(GoldenTest, ShardedMosaicSnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::mosaicDefault()).withEngineShards(1),
                "mosaic_sharded");
}

TEST(GoldenTest, ShardedGpuMmuSnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::baseline()).withEngineShards(1),
                "gpu_mmu_sharded");
}

TEST(GoldenTest, ShardedLargeOnlySnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::largeOnly()).withEngineShards(1),
                "large_only_sharded");
}

/**
 * Three-size (Trident) goldens: Mosaic running the {4K,64K,2M}
 * hierarchy, without and with CoLT coalesced base-TLB entries, pins
 * the N-level walker/TLB/tiering machinery to a recorded truth the
 * same way the default pair is pinned. Generated with
 * MOSAIC_UPDATE_GOLDEN=1 like every other golden.
 */
TEST(GoldenTest, TridentMosaicSnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::mosaicDefault())
                    .withSizeHierarchy(PageSizeHierarchy::trident()),
                "mosaic_trident");
}

TEST(GoldenTest, TridentColtMosaicSnapshotMatchesGolden)
{
    checkGolden(pinnedConfig(SimConfig::mosaicDefault())
                    .withSizeHierarchy(PageSizeHierarchy::trident(),
                                       /*colt=*/true),
                "mosaic_trident_colt");
}

/**
 * Serial trace golden (DESIGN.md §9): the exported Chrome Trace JSON of
 * a pinned traced run under the classic serial engine, byte-for-byte.
 * This is the contract the per-lane sharded tracing work rides on: the
 * serial export path must stay byte-identical no matter how the merged
 * multi-lane exporter evolves. The pinned cell is smaller than the
 * metrics cells (8 SMs, 4 warps) so the full event stream fits the ring
 * with zero drops -- a dropped event would make the document depend on
 * ring capacity instead of simulated behavior.
 */
Workload
tracedWorkload()
{
    Workload w = scaledWorkload(heterogeneousWorkload(1, 42), 0.02);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 100;
    return w;
}

SimConfig
tracedConfig()
{
    SimConfig c = SimConfig::mosaicDefault().withIoCompression(16.0);
    c.gpu.numSms = 8;
    c.gpu.sm.warpsPerSm = 4;
    c.churn.enabled = true;
    return c.withTracing();
}

TEST(GoldenTest, SerialTraceMatchesGolden)
{
    const SimResult r = runSimulation(tracedWorkload(), tracedConfig());
    ASSERT_NE(r.trace, nullptr);
    EXPECT_EQ(r.trace->dropped(), 0u)
        << "the pinned trace cell must fit the ring; a lossy golden "
           "would pin ring capacity, not behavior";
    // Matches what writeChromeTraceFile() emits (document + newline).
    checkGoldenDocument(chromeTraceJson(*r.trace, "Mosaic") + "\n",
                        "trace_serial");
}

/**
 * The snapshot itself must be reproducible within one build before
 * byte-comparing across builds means anything.
 */
TEST(GoldenTest, SnapshotIsDeterministicWithinBuild)
{
    const SimConfig c = pinnedConfig(SimConfig::mosaicDefault());
    EXPECT_EQ(snapshotDocument(c), snapshotDocument(c));
}

}  // namespace
}  // namespace mosaic
