/** @file Unit tests for the baseline GPU-MMU memory manager. */

#include <gtest/gtest.h>

#include "mm/gpu_mmu_manager.h"
#include "vm/page_table.h"

namespace mosaic {
namespace {

struct BaselineRig
{
    RegionPtNodeAllocator alloc{1ull << 33, 64ull << 20};
    GpuMmuManager mgr{0, 64 * kLargePageSize};
    PageTable pt0{0, alloc};
    PageTable pt1{1, alloc};

    BaselineRig()
    {
        mgr.setEnv(ManagerEnv{});
        mgr.registerApp(0, pt0);
        mgr.registerApp(1, pt1);
    }
};

TEST(GpuMmuManagerTest, BackPageMapsAndMakesResident)
{
    BaselineRig rig;
    rig.mgr.reserveRegion(0, 0x100000, 16 * kBasePageSize);
    EXPECT_TRUE(rig.mgr.backPage(0, 0x100000));
    EXPECT_TRUE(rig.pt0.isMapped(0x100000));
    EXPECT_TRUE(rig.pt0.isResident(0x100000));
    EXPECT_EQ(rig.mgr.allocatedBytes(), kBasePageSize);
}

TEST(GpuMmuManagerTest, InterleavesApplicationsWithinAFrame)
{
    BaselineRig rig;
    // Alternate faults from two apps: the shared cursor packs them into
    // the same large page frame (paper Fig. 1a).
    for (unsigned i = 0; i < 8; ++i) {
        rig.mgr.backPage(0, 0x100000 + i * kBasePageSize);
        rig.mgr.backPage(1, 0x200000 + i * kBasePageSize);
    }
    EXPECT_TRUE(rig.mgr.pool().frame(0).mixed);
    EXPECT_EQ(rig.mgr.pool().frame(0).usedCount, 16u);
}

TEST(GpuMmuManagerTest, NeverCoalesces)
{
    BaselineRig rig;
    // Back an entire aligned 2MB region in order; even then the baseline
    // performs no coalescing.
    const Addr va = 1ull << 30;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.mgr.backPage(0, va + i * kBasePageSize);
    EXPECT_FALSE(rig.pt0.isCoalesced(va));
    EXPECT_EQ(rig.mgr.stats().coalesceOps, 0u);
}

TEST(GpuMmuManagerTest, ReleaseRecyclesSlots)
{
    BaselineRig rig;
    const Addr va = 0x400000;
    for (unsigned i = 0; i < 4; ++i)
        rig.mgr.backPage(0, va + i * kBasePageSize);
    const std::uint64_t before = rig.mgr.allocatedBytes();
    rig.mgr.releaseRegion(0, va, 4 * kBasePageSize);
    EXPECT_EQ(rig.mgr.allocatedBytes(), before - 4 * kBasePageSize);
    EXPECT_FALSE(rig.pt0.isMapped(va));

    // New allocations reuse the recycled slots before fresh frames.
    rig.mgr.backPage(1, 0x900000);
    EXPECT_EQ(rig.mgr.pool().frame(0).usedCount, 1u);
}

TEST(GpuMmuManagerTest, RepeatedBackPageIsIdempotent)
{
    BaselineRig rig;
    EXPECT_TRUE(rig.mgr.backPage(0, 0x5000));
    EXPECT_TRUE(rig.mgr.backPage(0, 0x5000));
    EXPECT_EQ(rig.mgr.allocatedBytes(), kBasePageSize);
}

TEST(GpuMmuManagerTest, OutOfMemoryReturnsFalse)
{
    RegionPtNodeAllocator alloc(1ull << 33, 64ull << 20);
    GpuMmuManager mgr(0, kLargePageSize);  // one frame only
    PageTable pt(0, alloc);
    mgr.registerApp(0, pt);
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        EXPECT_TRUE(mgr.backPage(0, i * kBasePageSize));
    EXPECT_FALSE(mgr.backPage(0, kLargePageSize));
    EXPECT_EQ(mgr.stats().outOfFrames, 1u);
}

TEST(GpuMmuManagerTest, DistinctVirtualPagesGetDistinctPhysicalPages)
{
    BaselineRig rig;
    std::set<Addr> phys;
    for (unsigned i = 0; i < 100; ++i) {
        const Addr va = 0x100000 + i * kBasePageSize;
        rig.mgr.backPage(0, va);
        phys.insert(rig.pt0.translate(va).physAddr);
    }
    EXPECT_EQ(phys.size(), 100u);
}

}  // namespace
}  // namespace mosaic
