/** @file Focused tests for the In-Place Coalescer's eligibility rules
 *  and its zero-migration, zero-flush promotion. */

#include <gtest/gtest.h>

#include "dram/dram.h"
#include "engine/event_queue.h"
#include "mm/in_place_coalescer.h"
#include "mm/mosaic_manager.h"
#include "vm/translation.h"
#include "vm/walker.h"

namespace mosaic {
namespace {

constexpr Addr kVa = 1ull << 40;

struct CoalescerRig
{
    RegionPtNodeAllocator alloc{1ull << 33, 64ull << 20};
    MosaicState state{0, 16 * kLargePageSize};
    PageTable pt{0, alloc};
    InPlaceCoalescer coalescer{state};

    CoalescerRig() { state.apps[0].pageTable = &pt; }

    /** Manually builds a chunk-reserved frame with @p pages mapped. */
    std::uint32_t
    buildFrame(unsigned pages, AppId app = 0)
    {
        const std::uint32_t frame = state.freeFrames.back();
        state.freeFrames.pop_back();
        state.pool.frame(frame).owner = app;
        state.frameChunkVa[frame] = kVa;
        for (unsigned s = 0; s < pages; ++s) {
            state.pool.allocateSlot(frame, s, app,
                                    kVa + s * kBasePageSize);
            pt.mapBasePage(kVa + s * kBasePageSize,
                           state.pool.slotAddr(frame, s));
        }
        return frame;
    }
};

TEST(InPlaceCoalescerTest, FullyPopulatedChunkFrameIsEligible)
{
    CoalescerRig rig;
    const auto frame = rig.buildFrame(kBasePagesPerLargePage);
    EXPECT_TRUE(rig.coalescer.eligible(frame));
    EXPECT_TRUE(rig.coalescer.tryCoalesce(frame));
    EXPECT_TRUE(rig.state.pool.frame(frame).coalesced);
    EXPECT_TRUE(rig.pt.isCoalesced(kVa));
    EXPECT_EQ(rig.state.stats.coalesceOps, 1u);
}

TEST(InPlaceCoalescerTest, PartialFrameIsNotEligible)
{
    CoalescerRig rig;
    const auto frame = rig.buildFrame(kBasePagesPerLargePage - 1);
    EXPECT_FALSE(rig.coalescer.eligible(frame));
    EXPECT_FALSE(rig.coalescer.tryCoalesce(frame));
    EXPECT_FALSE(rig.pt.isCoalesced(kVa));
}

TEST(InPlaceCoalescerTest, AlreadyCoalescedFrameIsNotEligible)
{
    CoalescerRig rig;
    const auto frame = rig.buildFrame(kBasePagesPerLargePage);
    ASSERT_TRUE(rig.coalescer.tryCoalesce(frame));
    EXPECT_FALSE(rig.coalescer.eligible(frame));
    EXPECT_FALSE(rig.coalescer.tryCoalesce(frame));
    EXPECT_EQ(rig.state.stats.coalesceOps, 1u);
}

TEST(InPlaceCoalescerTest, LooseFrameWithoutChunkIsNotEligible)
{
    CoalescerRig rig;
    const auto frame = rig.buildFrame(kBasePagesPerLargePage);
    rig.state.frameChunkVa[frame] = kInvalidAddr;  // not chunk-reserved
    EXPECT_FALSE(rig.coalescer.eligible(frame));
}

TEST(InPlaceCoalescerTest, FragmentedFrameIsNotEligible)
{
    CoalescerRig rig;
    const auto frame = rig.buildFrame(0);
    Rng rng(1);
    rig.state.pool.pinFragments(frame, 4, rng);
    EXPECT_FALSE(rig.coalescer.eligible(frame));
}

TEST(InPlaceCoalescerTest, CoalescingNeedsNoTlbFlush)
{
    // The defining property (paper Fig. 6): stale base translations
    // remain usable after coalescing because nothing moved.
    EventQueue ev;
    DramModel dram(ev, DramConfig{});
    CacheHierarchy caches(ev, dram, CacheHierarchyConfig{});
    PageTableWalker walker(ev, caches, WalkerConfig{});
    TranslationService xlate(ev, walker, 1, TranslationConfig{});

    CoalescerRig rig;
    const auto frame = rig.buildFrame(kBasePagesPerLargePage);

    // Warm a base translation before coalescing.
    Translation before;
    xlate.translate(0, rig.pt, kVa, [&](const Translation &t) {
        before = t;
    });
    ev.runAll();
    ASSERT_TRUE(before.valid);
    ASSERT_EQ(xlate.l1Tlb(0).baseOccupancy(), 1u);

    ASSERT_TRUE(rig.coalescer.tryCoalesce(frame));

    // The stale base entry still resolves to the same physical address;
    // no flush happened.
    EXPECT_EQ(xlate.l1Tlb(0).baseOccupancy(), 1u);
    Translation after;
    xlate.translate(0, rig.pt, kVa, [&](const Translation &t) {
        after = t;
    });
    ev.runAll();
    ASSERT_TRUE(after.valid);
    EXPECT_EQ(after.physAddr, before.physAddr);
}

TEST(InPlaceCoalescerTest, PteUpdateChargesDramWrites)
{
    EventQueue ev;
    DramModel dram(ev, DramConfig{});

    CoalescerRig rig;
    rig.state.env.dram = &dram;
    const auto frame = rig.buildFrame(kBasePagesPerLargePage);
    const std::uint64_t writes_before = dram.stats().writes;
    ASSERT_TRUE(rig.coalescer.tryCoalesce(frame));
    EXPECT_GT(dram.stats().writes, writes_before);
    ev.runAll();
}

}  // namespace
}  // namespace mosaic
