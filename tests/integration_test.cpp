/** @file End-to-end simulations asserting the paper's directional
 *  results and cross-module invariants. */

#include <gtest/gtest.h>

#include "runner/simulation.h"
#include "workload/apps.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

/** Small, fast workload profile for integration runs. */
Workload
tinyWorkload(const std::string &app, unsigned copies)
{
    Workload w = scaledWorkload(homogeneousWorkload(app, copies), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 400;
    return w;
}

SimConfig
fast(SimConfig c)
{
    c.gpu.sm.warpsPerSm = 16;
    return c.withIoCompression(16.0);
}

TEST(IntegrationTest, MosaicBeatsBaselineOnTlbThrashingWorkload)
{
    const Workload w = tinyWorkload("HISTO", 2);
    const SimResult base = runSimulation(w, fast(SimConfig::baseline()));
    const SimResult mosaic =
        runSimulation(w, fast(SimConfig::mosaicDefault()));
    EXPECT_GT(mosaic.totalIpc(), base.totalIpc() * 1.2);
    EXPECT_GT(mosaic.mm.coalesceOps, 0u);
    EXPECT_GT(mosaic.l1TlbHitRate, base.l1TlbHitRate);
}

TEST(IntegrationTest, IdealTlbIsAnUpperBound)
{
    const Workload w = tinyWorkload("BP", 2);
    const SimResult ideal = runSimulation(w, fast(SimConfig::idealTlb()));
    const SimResult base = runSimulation(w, fast(SimConfig::baseline()));
    const SimResult mosaic =
        runSimulation(w, fast(SimConfig::mosaicDefault()));
    EXPECT_GE(ideal.totalIpc() * 1.02, mosaic.totalIpc());
    EXPECT_GE(ideal.totalIpc() * 1.02, base.totalIpc());
    EXPECT_EQ(ideal.pageWalks, 0u);
}

TEST(IntegrationTest, MosaicComesCloseToIdeal)
{
    const Workload w = tinyWorkload("HISTO", 2);
    const SimResult ideal = runSimulation(w, fast(SimConfig::idealTlb()));
    const SimResult mosaic =
        runSimulation(w, fast(SimConfig::mosaicDefault()));
    // Paper: within ~7% for homogeneous workloads; we allow 25% here
    // because the tiny profile exaggerates cold effects.
    EXPECT_GT(mosaic.totalIpc(), ideal.totalIpc() * 0.75);
}

TEST(IntegrationTest, LargePagesAloneCollapseUnderRealPaging)
{
    // With uncompressed PCIe constants, 2MB far-faults are catastrophic
    // versus 4KB (paper Fig. 4's direction).
    Workload w = tinyWorkload("TRD", 1);
    SimConfig base = SimConfig::baseline();
    SimConfig large = SimConfig::largeOnly();
    base.gpu.sm.warpsPerSm = 16;
    large.gpu.sm.warpsPerSm = 16;
    const SimResult r4k = runSimulation(w, base);
    const SimResult r2m = runSimulation(w, large);
    EXPECT_LT(r2m.totalIpc(), r4k.totalIpc());
    EXPECT_GT(r2m.pagedBytes, r4k.pagedBytes);  // untouched data moved
}

TEST(IntegrationTest, LargePagesWinWithoutPagingOverhead)
{
    const Workload w = tinyWorkload("HISTO", 2);
    const SimResult r4k =
        runSimulation(w, fast(SimConfig::baseline().withoutPaging()));
    const SimResult r2m =
        runSimulation(w, fast(SimConfig::largeOnly().withoutPaging()));
    EXPECT_GT(r2m.totalIpc(), r4k.totalIpc());
}

TEST(IntegrationTest, MemoryProtectionHeldThroughoutMultiAppRun)
{
    const Workload w = tinyWorkload("BFS", 3);
    const SimResult r = runSimulation(w, fast(SimConfig::mosaicDefault()));
    // No frame ever held two applications' pages.
    EXPECT_EQ(r.mm.softGuaranteeViolations, 0u);
}

TEST(IntegrationTest, DeterministicForSameSeed)
{
    const Workload w = tinyWorkload("NW", 2);
    const SimResult a = runSimulation(w, fast(SimConfig::mosaicDefault()));
    const SimResult b = runSimulation(w, fast(SimConfig::mosaicDefault()));
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.apps[0].instructions, b.apps[0].instructions);
    EXPECT_EQ(a.pageWalks, b.pageWalks);
    EXPECT_EQ(a.farFaults, b.farFaults);
}

TEST(IntegrationTest, DemandPagingTransfersOnlyTouchedData)
{
    Workload w = tinyWorkload("LBM", 1);  // touchedFraction < 1
    const SimResult mosaic =
        runSimulation(w, fast(SimConfig::mosaicDefault()));
    const SimResult large =
        runSimulation(w, fast(SimConfig::largeOnly()));
    // Mosaic transfers 4KB pages on demand; 2MB-only drags whole chunks.
    EXPECT_LT(mosaic.pagedBytes, large.pagedBytes);
}

TEST(IntegrationTest, MultiAppIncreasesBaselineTlbPressure)
{
    const SimResult one =
        runSimulation(tinyWorkload("CONS", 1), fast(SimConfig::baseline()));
    const SimResult four =
        runSimulation(tinyWorkload("CONS", 4), fast(SimConfig::baseline()));
    // Shared L2 TLB interference grows with concurrency (Fig. 13).
    EXPECT_LE(four.l2TlbHitRate, one.l2TlbHitRate + 0.05);
}

TEST(IntegrationTest, WeightedSpeedupAgainstAloneRuns)
{
    const Workload w = tinyWorkload("SGEMM", 2);
    const SimConfig cfg = fast(SimConfig::baseline());
    const auto alone = aloneIpcs(w, cfg);
    ASSERT_EQ(alone.size(), 2u);
    const SimResult shared = runSimulation(w, cfg);
    const double ws = weightedSpeedupOf(shared, alone);
    // Two apps on split SMs, sharing memory: 0 < WS <= ~2.2.
    EXPECT_GT(ws, 0.2);
    EXPECT_LT(ws, 2.3);
}

TEST(IntegrationTest, FragmentationStressStaysCorrectAndUsesCac)
{
    Workload w = tinyWorkload("HISTO", 2);
    SimConfig cfg = fast(SimConfig::mosaicDefault());
    cfg.fragmentationIndex = 1.0;
    cfg.fragmentationOccupancy = 0.5;
    const SimResult r = runSimulation(w, cfg);
    // All frames pre-fragmented: CAC consolidates the alien data to
    // recover whole frames, so some coalescing still happens and the
    // run completes with every instruction executed.
    EXPECT_GT(r.mm.compactions + r.mm.coalesceOps, 0u);
    std::uint64_t instr = 0;
    for (const AppResult &app : r.apps)
        instr += app.instructions;
    EXPECT_GT(instr, 0u);
}

TEST(IntegrationTest, PrefetchChargedVersusUnchargedOrdering)
{
    const Workload w = tinyWorkload("SCP", 1);
    const SimResult free_prefetch =
        runSimulation(w, fast(SimConfig::baseline().withoutPaging(false)));
    const SimResult charged =
        runSimulation(w, fast(SimConfig::baseline().withoutPaging(true)));
    EXPECT_GE(charged.totalCycles, free_prefetch.totalCycles);
}

}  // namespace
}  // namespace mosaic
