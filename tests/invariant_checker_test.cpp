/** @file Tests for the shadow-model invariant checker (DESIGN.md §10). */

#include <gtest/gtest.h>

#include "check/invariant_checker.h"
#include "dram/dram.h"
#include "engine/event_queue.h"
#include "mm/mosaic_manager.h"
#include "runner/simulation.h"
#include "vm/translation.h"
#include "vm/walker.h"
#include "workload/apps.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

constexpr Addr kVaA = 1ull << 40;
constexpr Addr kVaB = 2ull << 40;

/** Mosaic rig with the checker fully attached, sweeping every mutation. */
struct CheckedRig
{
    EventQueue ev;
    DramModel dram;
    CacheHierarchy caches;
    PageTableWalker walker;
    TranslationService xlate;
    RegionPtNodeAllocator alloc{1ull << 33, 256ull << 20};
    MosaicManager mgr;
    PageTable pt{0, alloc};
    InvariantChecker checker;

    static InvariantChecker::Config
    collecting()
    {
        InvariantChecker::Config c;
        c.fullSweepEvery = 1;
        c.abortOnViolation = false;
        return c;
    }

    explicit CheckedRig(MosaicConfig cfg = {})
        : dram(ev, DramConfig{}),
          caches(ev, dram, CacheHierarchyConfig{}),
          walker(ev, caches, WalkerConfig{}),
          xlate(ev, walker, 2, TranslationConfig{}),
          mgr(0, 32 * kLargePageSize, cfg),
          checker(collecting())
    {
        ManagerEnv env;
        env.events = &ev;
        env.dram = &dram;
        env.translation = &xlate;
        env.checker = &checker;
        env.stallGpu = [](Cycles) {};
        mgr.setEnv(env);
        checker.attachManager(&mgr);
        checker.attachMosaicState(&mgr.state());
        checker.attachCacConfig(&mgr.cac().config());
        checker.attachTranslation(&xlate);
        checker.attachDram(&dram);
        checker.observePageTable(pt);
        xlate.setChecker(&checker);
        mgr.registerApp(0, pt);
    }

    void
    populate(Addr va, std::uint64_t bytes)
    {
        mgr.reserveRegion(0, va, bytes);
        for (Addr p = va; p < va + bytes; p += kBasePageSize)
            ASSERT_TRUE(mgr.backPage(0, p));
    }

    void
    warmTlb(Addr va)
    {
        bool done = false;
        xlate.translate(0, pt, va, [&](const Translation &) { done = true; });
        ev.runAll();
        ASSERT_TRUE(done);
    }
};

TEST(InvariantCheckerTest, CleanLifecycleHasNoViolations)
{
    CheckedRig rig;
    rig.populate(kVaA, kLargePageSize);
    rig.populate(kVaB, 100 * kBasePageSize);
    rig.warmTlb(kVaA);
    rig.warmTlb(kVaB);
    rig.mgr.releaseRegion(0, kVaA, kLargePageSize);
    rig.mgr.releaseRegion(0, kVaB, 100 * kBasePageSize);
    rig.checker.verifyAll();
    EXPECT_GT(rig.checker.sweeps(), 0u);
    EXPECT_EQ(rig.checker.violationCount(), 0u)
        << (rig.checker.reports().empty() ? ""
                                          : rig.checker.reports().front());
}

TEST(InvariantCheckerTest, EmergencyParkedFragmentedFrameIsLegal)
{
    CheckedRig rig;
    rig.populate(kVaA, kLargePageSize);
    // Release half the chunk: 256 surviving pages sit exactly at the
    // occupancy threshold, so CAC parks the frame coalesced-with-holes
    // on the emergency list instead of splintering (paper §4.4).
    rig.mgr.releaseRegion(0, kVaA, kLargePageSize / 2);
    ASSERT_FALSE(rig.mgr.state().emergencyFrames.empty());
    const std::uint32_t frame = rig.mgr.state().emergencyFrames.front();
    EXPECT_TRUE(rig.mgr.state().pool.frame(frame).coalesced);
    EXPECT_EQ(rig.mgr.state().pool.frame(frame).usedCount,
              kBasePagesPerLargePage / 2);
    rig.checker.verifyAll();
    EXPECT_EQ(rig.checker.violationCount(), 0u)
        << (rig.checker.reports().empty() ? ""
                                          : rig.checker.reports().front());
}

TEST(InvariantCheckerTest, DetectsPageTableFramePoolDesync)
{
    CheckedRig rig;
    rig.populate(kVaA, 8 * kBasePageSize);
    rig.checker.verifyAll();
    ASSERT_EQ(rig.checker.violationCount(), 0u);

    // Inject the corruption the checker exists to catch: a mapping
    // installed behind the manager's back, pointing into a slot the
    // FramePool believes is free.
    const Addr bogus = rig.mgr.state().pool.slotAddr(7, 3);
    rig.pt.mapBasePage(kVaB, bogus);
    rig.checker.verifyAll();
    EXPECT_GT(rig.checker.violationCount(), 0u);
    EXPECT_FALSE(rig.checker.reports().empty());
}

TEST(InvariantCheckerTest, DetectsStaleTlbEntryAfterSilentRemap)
{
    CheckedRig rig;
    rig.populate(kVaA, 4 * kBasePageSize);
    rig.warmTlb(kVaA);
    rig.checker.verifyAll();
    ASSERT_EQ(rig.checker.violationCount(), 0u);

    // Remap behind the TLB's back (no shootdown): the cached PA is now
    // wrong and the coherence sweep must say so.
    const Addr newPa = rig.mgr.state().pool.slotAddr(9, 0);
    rig.pt.remapBasePage(kVaA, newPa);
    rig.checker.verifyAll();
    EXPECT_GT(rig.checker.violationCount(), 0u);
}

/**
 * Regression for the release-path TLB staleness bug the fuzzer found:
 * releaseRegion unmapped pages without base-entry shootdown, so a
 * re-reserved VA could hit a stale entry pointing at the recycled slot.
 */
TEST(InvariantCheckerTest, ReleaseShootsDownCachedTranslations)
{
    CheckedRig rig;
    rig.populate(kVaA, 4 * kBasePageSize);
    rig.warmTlb(kVaA);
    const std::uint64_t vpn = basePageNumber(kVaA);
    ASSERT_TRUE(rig.xlate.l2Tlb().containsBase(0, vpn));

    rig.mgr.releaseRegion(0, kVaA, 4 * kBasePageSize);
    EXPECT_FALSE(rig.xlate.l2Tlb().containsBase(0, vpn));
    for (SmId sm = 0; sm < 2; ++sm)
        EXPECT_FALSE(rig.xlate.l1Tlb(sm).containsBase(0, vpn));

    // Re-reserve and re-back: with the fuzz schedules' interleaving the
    // VA lands on a different slot; no stale translation may survive.
    rig.populate(kVaB, 64 * kBasePageSize);
    rig.populate(kVaA, 4 * kBasePageSize);
    rig.warmTlb(kVaA);
    rig.checker.verifyAll();
    EXPECT_EQ(rig.checker.violationCount(), 0u)
        << (rig.checker.reports().empty() ? ""
                                          : rig.checker.reports().front());
}

/** Small, fast workload profile (mirrors integration_test.cpp). */
Workload
tinyWorkload(const std::string &app, unsigned copies)
{
    Workload w = scaledWorkload(homogeneousWorkload(app, copies), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 400;
    return w;
}

SimConfig
fast(SimConfig c)
{
    c.gpu.sm.warpsPerSm = 16;
    return c.withIoCompression(16.0);
}

/**
 * The SimConfig::withInvariantChecks contract: checking is strictly
 * observation-only, so the full metrics snapshot -- every counter the
 * simulation produced -- must be byte-identical with checks on or off.
 */
TEST(InvariantCheckerTest, SimResultIsByteIdenticalWithChecksOn)
{
    const Workload w = tinyWorkload("NW", 2);
    const SimConfig base = fast(SimConfig::mosaicDefault());
    const SimResult off = runSimulation(w, base);
    const SimResult on = runSimulation(w, base.withInvariantChecks(64));

    EXPECT_EQ(off.totalCycles, on.totalCycles);
    EXPECT_EQ(off.pageWalks, on.pageWalks);
    EXPECT_EQ(off.farFaults, on.farFaults);
    EXPECT_EQ(off.pagedBytes, on.pagedBytes);
    EXPECT_EQ(off.gpuStallCycles, on.gpuStallCycles);
    ASSERT_EQ(off.apps.size(), on.apps.size());
    for (std::size_t i = 0; i < off.apps.size(); ++i)
        EXPECT_EQ(off.apps[i].instructions, on.apps[i].instructions);
    EXPECT_EQ(off.metrics.toJson(), on.metrics.toJson());
}

TEST(InvariantCheckerTest, CheckedBaselineAndLargeOnlyRunClean)
{
    const Workload w = tinyWorkload("SCP", 1);
    for (const SimConfig &cfg :
         {fast(SimConfig::baseline()), fast(SimConfig::largeOnly())}) {
        const SimResult r = runSimulation(w, cfg.withInvariantChecks(64));
        EXPECT_GT(r.totalCycles, 0u);
    }
}

}  // namespace
}  // namespace mosaic
