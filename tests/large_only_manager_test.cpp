/** @file Unit tests for the 2MB-only memory manager. */

#include <gtest/gtest.h>

#include "mm/large_only_manager.h"
#include "vm/page_table.h"

namespace mosaic {
namespace {

constexpr Addr kVa = 1ull << 40;

struct LargeRig
{
    RegionPtNodeAllocator alloc{1ull << 33, 64ull << 20};
    LargeOnlyManager mgr{0, 32 * kLargePageSize};
    PageTable pt{0, alloc};

    LargeRig()
    {
        mgr.setEnv(ManagerEnv{});
        mgr.registerApp(0, pt);
    }
};

TEST(LargeOnlyManagerTest, ReserveCommitsWholeChunksCoalesced)
{
    LargeRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize / 2);  // half a chunk
    EXPECT_TRUE(rig.pt.isCoalesced(kVa));
    // Entire chunk is mapped, even beyond the requested bytes.
    EXPECT_TRUE(rig.pt.isMapped(kVa + kLargePageSize - kBasePageSize));
    EXPECT_FALSE(rig.pt.isResident(kVa));
}

TEST(LargeOnlyManagerTest, MemoryBloatFromInternalFragmentation)
{
    LargeRig rig;
    // A 4KB buffer costs a whole 2MB frame: bloat factor 512.
    rig.mgr.reserveRegion(0, kVa, kBasePageSize);
    EXPECT_EQ(rig.mgr.allocatedBytes(), kLargePageSize);
    // 2.5MB costs 4MB.
    rig.mgr.reserveRegion(0, kVa + (1ull << 30),
                          kLargePageSize + kLargePageSize / 2);
    EXPECT_EQ(rig.mgr.allocatedBytes(), 3 * kLargePageSize);
}

TEST(LargeOnlyManagerTest, FaultMakesWholeChunkResident)
{
    LargeRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize);
    EXPECT_TRUE(rig.mgr.backPage(0, kVa + 17 * kBasePageSize));
    EXPECT_TRUE(rig.pt.isResident(kVa));
    EXPECT_TRUE(rig.pt.isResident(kVa + kLargePageSize - kBasePageSize));
}

TEST(LargeOnlyManagerTest, TransferGranularityIsLarge)
{
    LargeRig rig;
    EXPECT_EQ(rig.mgr.transferGranularity(), PageSize::Large);
}

TEST(LargeOnlyManagerTest, ReleaseFreesFrames)
{
    LargeRig rig;
    rig.mgr.reserveRegion(0, kVa, 3 * kLargePageSize);
    rig.mgr.backPage(0, kVa);
    rig.mgr.releaseRegion(0, kVa, 3 * kLargePageSize);
    EXPECT_EQ(rig.mgr.allocatedBytes(), 0u);
    EXPECT_FALSE(rig.pt.isMapped(kVa));
    // Frames are reusable afterwards.
    rig.mgr.reserveRegion(0, kVa + (1ull << 30), 32 * kLargePageSize);
    EXPECT_EQ(rig.mgr.allocatedBytes(), 32 * kLargePageSize);
}

TEST(LargeOnlyManagerTest, UnreservedFaultFails)
{
    LargeRig rig;
    EXPECT_FALSE(rig.mgr.backPage(0, 0x123456000));
}

TEST(LargeOnlyManagerTest, OutOfFramesCounted)
{
    RegionPtNodeAllocator alloc(1ull << 33, 64ull << 20);
    LargeOnlyManager mgr(0, 2 * kLargePageSize);
    PageTable pt(0, alloc);
    mgr.registerApp(0, pt);
    mgr.reserveRegion(0, kVa, 3 * kLargePageSize);
    EXPECT_EQ(mgr.stats().outOfFrames, 1u);
    EXPECT_EQ(mgr.allocatedBytes(), 2 * kLargePageSize);
}

}  // namespace
}  // namespace mosaic
