/** @file Parameterized property tests across memory-system geometries:
 *  conservation (every request completes exactly once), ordering
 *  sanity, and translation-path invariants under randomized traffic. */

#include <gtest/gtest.h>

#include <tuple>

#include "cache/hierarchy.h"
#include "dram/dram.h"
#include "engine/event_queue.h"
#include "vm/translation.h"
#include "vm/walker.h"

namespace mosaic {
namespace {

/** DRAM geometry sweep: every access completes exactly once, in finite
 *  time, for any channel/bank/row configuration. */
class DramGeometryTest
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, std::uint64_t>>
{
};

TEST_P(DramGeometryTest, ConservationUnderRandomTraffic)
{
    const auto [channels, banks, row_bytes] = GetParam();
    DramConfig cfg;
    cfg.channels = channels;
    cfg.banksPerChannel = banks;
    cfg.rowBytes = row_bytes;
    EventQueue ev;
    DramModel dram(ev, cfg);

    Rng rng(channels * 131 + banks);
    const int total = 2000;
    int completed = 0;
    Cycles last_done = 0;
    for (int i = 0; i < total; ++i) {
        dram.access(rng.below(1u << 26), rng.chance(0.3), [&] {
            ++completed;
            last_done = ev.now();
        });
    }
    ev.runAll();
    EXPECT_EQ(completed, total);
    EXPECT_EQ(dram.inFlight(), 0u);
    EXPECT_GT(last_done, 0u);
    EXPECT_EQ(dram.stats().rowHits + dram.stats().rowMisses,
              static_cast<std::uint64_t>(total));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DramGeometryTest,
    ::testing::Combine(::testing::Values(1u, 2u, 6u),
                       ::testing::Values(1u, 8u),
                       ::testing::Values<std::uint64_t>(512, 2048)));

/** Cache hierarchy sweep: conservation and hit-rate sanity. */
class CacheGeometrySweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometrySweepTest, ConservationAndL1Bounds)
{
    const auto [sms, l2_banks] = GetParam();
    CacheHierarchyConfig cfg;
    cfg.numSms = sms;
    cfg.l2Banks = l2_banks;
    EventQueue ev;
    DramModel dram(ev, DramConfig{});
    CacheHierarchy caches(ev, dram, cfg);

    Rng rng(sms * 7 + l2_banks);
    const int total = 3000;
    int completed = 0;
    for (int i = 0; i < total; ++i) {
        caches.access(static_cast<SmId>(rng.below(sms)),
                      rng.below(1u << 22), rng.chance(0.25),
                      [&] { ++completed; });
    }
    ev.runAll();
    EXPECT_EQ(completed, total);
    EXPECT_LE(caches.stats().l1Hits, caches.stats().l1Accesses);
    EXPECT_LE(caches.stats().l2Hits, caches.stats().l2Accesses);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometrySweepTest,
                         ::testing::Combine(::testing::Values(1u, 4u, 30u),
                                            ::testing::Values(1u, 12u)));

/** Walker sweep: every requested walk calls back exactly once for any
 *  concurrency cap and PWC setting, and results are always correct. */
class WalkerSweepTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, bool>>
{
};

TEST_P(WalkerSweepTest, EveryWalkResolvesCorrectly)
{
    const auto [max_walks, pwc, pte_in_dram] = GetParam();
    WalkerConfig cfg;
    cfg.maxConcurrentWalks = max_walks;
    cfg.usePageWalkCache = pwc;
    cfg.pteInDram = pte_in_dram;

    EventQueue ev;
    DramModel dram(ev, DramConfig{});
    CacheHierarchy caches(ev, dram, CacheHierarchyConfig{});
    PageTableWalker walker(ev, caches, cfg);
    RegionPtNodeAllocator alloc(1ull << 32, 64ull << 20);
    PageTable pt(0, alloc);

    // Map every even page; odd pages fault.
    const Addr base = 1ull << 40;
    for (std::uint64_t i = 0; i < 64; i += 2)
        pt.mapBasePage(base + i * kBasePageSize,
                       (1ull << 30) + i * kBasePageSize);

    int completed = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const Addr va = base + i * kBasePageSize;
        const bool expect_valid = i % 2 == 0;
        walker.requestWalk(pt, va,
                           [&completed, expect_valid,
                            i](const Translation &t) {
            ++completed;
            ASSERT_EQ(t.valid, expect_valid) << "page " << i;
            if (t.valid) {
                ASSERT_EQ(t.physAddr,
                          (1ull << 30) + i * kBasePageSize);
            }
        });
    }
    ev.runAll();
    EXPECT_EQ(completed, 64);
    EXPECT_EQ(walker.activeWalks(), 0u);
    EXPECT_EQ(walker.queuedWalks(), 0u);
    EXPECT_EQ(walker.stats().faults, 32u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WalkerSweepTest,
    ::testing::Combine(::testing::Values(1u, 8u, 64u),
                       ::testing::Bool(), ::testing::Bool()));

/** Translation-service sweep over TLB geometries: correctness of the
 *  returned physical addresses never depends on TLB size. */
class TranslationSweepTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TranslationSweepTest, PhysicalAddressesIndependentOfTlbSize)
{
    EventQueue ev;
    DramModel dram(ev, DramConfig{});
    CacheHierarchy caches(ev, dram, CacheHierarchyConfig{});
    PageTableWalker walker(ev, caches, WalkerConfig{});
    TranslationConfig cfg;
    cfg.l1.baseEntries = GetParam();
    cfg.l2.baseEntries = GetParam() * 4;
    cfg.l2.baseWays = std::min<std::size_t>(GetParam(), 16);
    TranslationService xlate(ev, walker, 4, cfg);
    RegionPtNodeAllocator alloc(1ull << 32, 64ull << 20);
    PageTable pt(0, alloc);

    const Addr base = 1ull << 40;
    for (std::uint64_t i = 0; i < 128; ++i)
        pt.mapBasePage(base + i * kBasePageSize,
                       (2ull << 30) + i * kBasePageSize);

    Rng rng(GetParam());
    int completed = 0;
    for (int round = 0; round < 400; ++round) {
        const std::uint64_t page = rng.below(128);
        const Addr va = base + page * kBasePageSize + rng.below(4096);
        xlate.translate(static_cast<SmId>(rng.below(4)), pt, va,
                        [&completed, page, va](const Translation &t) {
            ++completed;
            ASSERT_TRUE(t.valid);
            ASSERT_EQ(t.physAddr,
                      (2ull << 30) + page * kBasePageSize + (va & 4095));
        });
    }
    ev.runAll();
    EXPECT_EQ(completed, 400);
}

INSTANTIATE_TEST_SUITE_P(TlbSizes, TranslationSweepTest,
                         ::testing::Values<std::size_t>(8, 32, 128));

}  // namespace
}  // namespace mosaic
