/** @file Unit and property tests for the Mosaic memory manager
 *  (CoCoA + In-Place Coalescer + the release paths into CAC). */

#include <gtest/gtest.h>

#include <set>

#include "mm/mosaic_manager.h"
#include "vm/page_table.h"

namespace mosaic {
namespace {

constexpr Addr kVaA = 1ull << 40;
constexpr Addr kVaB = 2ull << 40;

struct MosaicRig
{
    RegionPtNodeAllocator alloc{1ull << 33, 256ull << 20};
    MosaicManager mgr;
    PageTable ptA{0, alloc};
    PageTable ptB{1, alloc};

    explicit MosaicRig(std::size_t frames = 64, MosaicConfig cfg = {})
        : mgr(0, frames * kLargePageSize, cfg)
    {
        mgr.setEnv(ManagerEnv{});
        mgr.registerApp(0, ptA);
        mgr.registerApp(1, ptB);
    }

    PageTable &pt(AppId app) { return app == 0 ? ptA : ptB; }

    /** Reserves a region and faults every page resident. */
    void
    populate(AppId app, Addr va, std::uint64_t bytes)
    {
        mgr.reserveRegion(app, va, bytes);
        for (Addr p = va; p < va + bytes; p += kBasePageSize)
            EXPECT_TRUE(mgr.backPage(app, p));
    }

    /** Checks the soft guarantee across the whole pool. */
    void
    expectSoftGuarantee()
    {
        for (std::size_t f = 0; f < mgr.state().pool.numFrames(); ++f) {
            const FrameInfo &info = mgr.state().pool.frame(f);
            EXPECT_FALSE(info.mixed)
                << "frame " << f << " violates the soft guarantee";
        }
        EXPECT_EQ(mgr.stats().softGuaranteeViolations, 0u);
    }
};

TEST(MosaicManagerTest, AlignedChunkIsCommittedAndCoalescedAtReserve)
{
    MosaicRig rig;
    rig.mgr.reserveRegion(0, kVaA, kLargePageSize);
    // All 512 pages mapped (non-resident) and promoted, before any fault.
    EXPECT_TRUE(rig.ptA.isCoalesced(kVaA));
    EXPECT_TRUE(rig.ptA.isMapped(kVaA + 37 * kBasePageSize));
    EXPECT_FALSE(rig.ptA.isResident(kVaA + 37 * kBasePageSize));
    EXPECT_EQ(rig.mgr.stats().coalesceOps, 1u);
}

TEST(MosaicManagerTest, ChunkPagesAreContiguousAndAligned)
{
    MosaicRig rig;
    rig.populate(0, kVaA, 3 * kLargePageSize);
    const Addr frame_base = basePageBase(rig.ptA.translate(kVaA).physAddr);
    EXPECT_TRUE(isLargePageAligned(frame_base));
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i) {
        const Translation t =
            rig.ptA.translate(kVaA + i * kBasePageSize);
        ASSERT_TRUE(t.valid);
        EXPECT_EQ(t.physAddr, frame_base + i * kBasePageSize);
        EXPECT_EQ(t.size, PageSize::Large);
    }
}

TEST(MosaicManagerTest, FaultMarksResident)
{
    MosaicRig rig;
    rig.mgr.reserveRegion(0, kVaA, kLargePageSize);
    EXPECT_TRUE(rig.mgr.backPage(0, kVaA + 5 * kBasePageSize));
    EXPECT_TRUE(rig.ptA.isResident(kVaA + 5 * kBasePageSize));
    EXPECT_FALSE(rig.ptA.isResident(kVaA + 6 * kBasePageSize));
}

TEST(MosaicManagerTest, UnalignedTailUsesLoosePages)
{
    MosaicRig rig;
    // 1.5 large pages: one aligned chunk + 256 tail pages.
    rig.populate(0, kVaA, kLargePageSize + kLargePageSize / 2);
    EXPECT_TRUE(rig.ptA.isCoalesced(kVaA));
    EXPECT_FALSE(rig.ptA.isCoalesced(kVaA + kLargePageSize));
    // Tail pages are mapped and resident, but as base pages.
    const Translation t =
        rig.ptA.translate(kVaA + kLargePageSize + 3 * kBasePageSize);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Base);
    rig.expectSoftGuarantee();
}

TEST(MosaicManagerTest, SoftGuaranteeAcrossTwoApps)
{
    MosaicRig rig;
    // Interleave loose allocations from both apps.
    rig.mgr.reserveRegion(0, kVaA, 64 * kBasePageSize);
    rig.mgr.reserveRegion(1, kVaB, 64 * kBasePageSize);
    for (unsigned i = 0; i < 64; ++i) {
        EXPECT_TRUE(rig.mgr.backPage(0, kVaA + i * kBasePageSize));
        EXPECT_TRUE(rig.mgr.backPage(1, kVaB + i * kBasePageSize));
    }
    rig.expectSoftGuarantee();
}

TEST(MosaicManagerTest, FullReleaseReturnsFramesToFreeList)
{
    MosaicRig rig(/*frames=*/8);
    const std::size_t free_before = rig.mgr.state().freeFrames.size();
    rig.populate(0, kVaA, 4 * kLargePageSize);
    EXPECT_EQ(rig.mgr.state().freeFrames.size(), free_before - 4);
    rig.mgr.releaseRegion(0, kVaA, 4 * kLargePageSize);
    EXPECT_EQ(rig.mgr.state().freeFrames.size(), free_before);
    EXPECT_EQ(rig.mgr.allocatedBytes(), 0u);
    EXPECT_FALSE(rig.ptA.isMapped(kVaA));
    // The region can be re-reserved afterwards.
    rig.populate(0, kVaA, kLargePageSize);
    EXPECT_TRUE(rig.ptA.isCoalesced(kVaA));
}

TEST(MosaicManagerTest, PartialReleaseBelowThresholdSplintersAndCompacts)
{
    MosaicConfig cfg;
    cfg.cac.occupancyThresholdPages = kBasePagesPerLargePage / 2;
    MosaicRig rig(16, cfg);
    rig.populate(0, kVaA, kLargePageSize);
    // Also give the app a partial loose frame so compaction has
    // destinations.
    rig.populate(0, kVaB, 64 * kBasePageSize);

    // Release 75% of the chunk: occupancy falls below the threshold.
    rig.mgr.releaseRegion(0, kVaA, (kLargePageSize * 3) / 4);
    EXPECT_FALSE(rig.ptA.isCoalesced(kVaA));
    EXPECT_EQ(rig.mgr.stats().splinterOps, 1u);
    EXPECT_GE(rig.mgr.stats().migrations, 1u);
    EXPECT_GE(rig.mgr.stats().compactions, 1u);

    // Surviving pages still translate correctly after migration.
    for (Addr va = kVaA + (kLargePageSize * 3) / 4; va < kVaA + kLargePageSize;
         va += kBasePageSize) {
        EXPECT_TRUE(rig.ptA.isMapped(va)) << std::hex << va;
    }
    rig.expectSoftGuarantee();
}

TEST(MosaicManagerTest, PartialReleaseAboveThresholdParksOnEmergencyList)
{
    MosaicConfig cfg;
    cfg.cac.occupancyThresholdPages = kBasePagesPerLargePage / 2;
    MosaicRig rig(16, cfg);
    rig.populate(0, kVaA, kLargePageSize);
    // Release only 10%: frame stays coalesced, goes to emergency list.
    rig.mgr.releaseRegion(0, kVaA, kLargePageSize / 10);
    EXPECT_TRUE(rig.ptA.isCoalesced(kVaA));
    EXPECT_EQ(rig.mgr.state().emergencyFrames.size(), 1u);
    EXPECT_EQ(rig.mgr.stats().splinterOps, 0u);
}

TEST(MosaicManagerTest, EmergencyFailsafeSplintersUnderPressure)
{
    MosaicConfig cfg;
    cfg.cac.occupancyThresholdPages = kBasePagesPerLargePage / 2;
    MosaicRig rig(/*frames=*/2, cfg);
    // Fill both frames with app 0, release a sliver of one so it parks
    // on the emergency list while staying coalesced.
    rig.populate(0, kVaA, 2 * kLargePageSize);
    rig.mgr.releaseRegion(0, kVaA, kLargePageSize / 16);

    // App 1 now needs memory; the only capacity is the emergency frame.
    rig.mgr.reserveRegion(1, kVaB, 8 * kBasePageSize);
    EXPECT_TRUE(rig.mgr.backPage(1, kVaB));
    EXPECT_EQ(rig.mgr.stats().emergencySplinters, 1u);
    EXPECT_FALSE(rig.ptA.isCoalesced(kVaA));
    // This is the one sanctioned soft-guarantee violation.
    EXPECT_GE(rig.mgr.stats().softGuaranteeViolations, 1u);
}

TEST(MosaicManagerTest, FragmentationInjectionPinsFrames)
{
    MosaicRig rig(32);
    rig.mgr.injectFragmentation(1.0, 0.5, 99);
    EXPECT_TRUE(rig.mgr.state().freeFrames.empty());
    for (std::size_t f = 0; f < rig.mgr.state().pool.numFrames(); ++f) {
        EXPECT_EQ(rig.mgr.state().pool.frame(f).pinnedCount,
                  kBasePagesPerLargePage / 2);
    }
    // Allocation still succeeds through fragmented frames' holes.
    rig.mgr.reserveRegion(0, kVaA, 16 * kBasePageSize);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_TRUE(rig.mgr.backPage(0, kVaA + i * kBasePageSize));
    // Alien pages never coalesce with application pages.
    EXPECT_EQ(rig.mgr.stats().coalesceOps, 0u);
}

TEST(MosaicManagerTest, PartialFragmentationLeavesCleanFrames)
{
    MosaicRig rig(64);
    rig.mgr.injectFragmentation(0.5, 0.25, 7);
    const std::size_t free_after = rig.mgr.state().freeFrames.size();
    EXPECT_GT(free_after, 16u);
    EXPECT_LT(free_after, 48u);
}

TEST(MosaicManagerTest, AllocatedBytesCountsCoalescedFramesWhole)
{
    MosaicRig rig;
    rig.mgr.reserveRegion(0, kVaA, kLargePageSize);
    EXPECT_EQ(rig.mgr.allocatedBytes(), kLargePageSize);
    // A loose page adds one base page.
    rig.mgr.reserveRegion(0, kVaB, kBasePageSize);
    rig.mgr.backPage(0, kVaB);
    EXPECT_EQ(rig.mgr.allocatedBytes(), kLargePageSize + kBasePageSize);
}

TEST(MosaicManagerTest, CoalescingCanBeDisabled)
{
    MosaicConfig cfg;
    cfg.coalescingEnabled = false;
    MosaicRig rig(16, cfg);
    rig.populate(0, kVaA, kLargePageSize);
    EXPECT_FALSE(rig.ptA.isCoalesced(kVaA));
    EXPECT_EQ(rig.mgr.stats().coalesceOps, 0u);
    // Contiguity is still conserved by CoCoA.
    const Addr base = basePageBase(rig.ptA.translate(kVaA).physAddr);
    EXPECT_EQ(rig.ptA.translate(kVaA + kBasePageSize).physAddr,
              base + kBasePageSize);
}

TEST(MosaicManagerTest, DeferredCoalescingWaitsForResidency)
{
    MosaicConfig cfg;
    cfg.coalesceResidentThreshold = 256;  // half the frame
    MosaicRig rig(16, cfg);
    rig.mgr.reserveRegion(0, kVaA, kLargePageSize);
    // Reservation alone must not promote under the deferred policy.
    EXPECT_FALSE(rig.ptA.isCoalesced(kVaA));

    for (unsigned i = 0; i < 255; ++i)
        EXPECT_TRUE(rig.mgr.backPage(0, kVaA + i * kBasePageSize));
    EXPECT_FALSE(rig.ptA.isCoalesced(kVaA));

    EXPECT_TRUE(rig.mgr.backPage(0, kVaA + 255 * kBasePageSize));
    EXPECT_TRUE(rig.ptA.isCoalesced(kVaA));
    EXPECT_EQ(rig.mgr.stats().coalesceOps, 1u);
}

/**
 * Property fuzz: random reserve/fault/release sequences from two apps
 * must preserve the soft guarantee, translation consistency, and frame
 * accounting, for any seed.
 */
class MosaicFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MosaicFuzzTest, InvariantsHoldUnderRandomWorkload)
{
    MosaicRig rig(96);
    Rng rng(GetParam());

    struct Region
    {
        AppId app;
        Addr va;
        std::uint64_t bytes;
    };
    std::vector<Region> live;
    Addr next_va[2] = {kVaA, kVaB};

    for (int step = 0; step < 200; ++step) {
        const auto action = rng.below(10);
        if (action < 4 || live.empty()) {
            // Reserve + fully fault a region of 1..4MB.
            const AppId app = static_cast<AppId>(rng.below(2));
            const std::uint64_t bytes =
                roundUp(rng.between(kBasePageSize, 4 * kLargePageSize),
                        kBasePageSize);
            const Addr va = next_va[app];
            next_va[app] += roundUp(bytes, kLargePageSize) + kLargePageSize;
            rig.mgr.reserveRegion(app, va, bytes);
            for (Addr p = va; p < va + bytes; p += kBasePageSize)
                ASSERT_TRUE(rig.mgr.backPage(app, p));
            live.push_back(Region{app, va, bytes});
        } else if (action < 8) {
            // Release a random live region entirely.
            const std::size_t idx = rng.below(live.size());
            const Region r = live[idx];
            rig.mgr.releaseRegion(r.app, r.va, r.bytes);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
            // Release a random prefix of a live region.
            const std::size_t idx = rng.below(live.size());
            Region &r = live[idx];
            const std::uint64_t cut = roundUp(
                rng.between(kBasePageSize, r.bytes), kBasePageSize);
            rig.mgr.releaseRegion(r.app, r.va, std::min(cut, r.bytes));
            if (cut >= r.bytes) {
                live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
            } else {
                r.va += cut;
                r.bytes -= cut;
            }
        }

        // Invariant: every live page translates, is resident, and two
        // distinct VAs never share a physical page.
        std::set<Addr> phys;
        std::uint64_t mapped = 0;
        for (const Region &r : live) {
            for (Addr p = r.va; p < r.va + r.bytes; p += kBasePageSize) {
                const Translation t = rig.pt(r.app).translate(p);
                ASSERT_TRUE(t.valid && t.resident);
                ASSERT_TRUE(phys.insert(basePageBase(t.physAddr)).second);
                ++mapped;
            }
        }
        ASSERT_EQ(rig.mgr.state().pool.allocatedPages(), mapped);
        rig.expectSoftGuarantee();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MosaicFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace mosaic
