/** @file Unit tests for the miss-status holding registers. */

#include <gtest/gtest.h>

#include "cache/mshr.h"

namespace mosaic {
namespace {

TEST(MshrTest, FirstMissIsNew)
{
    MshrFile mshr;
    EXPECT_EQ(mshr.registerMiss(1, [] {}), MshrFile::Outcome::NewMiss);
    EXPECT_TRUE(mshr.pending(1));
}

TEST(MshrTest, SecondMissMerges)
{
    MshrFile mshr;
    mshr.registerMiss(1, [] {});
    EXPECT_EQ(mshr.registerMiss(1, [] {}), MshrFile::Outcome::Merged);
    EXPECT_EQ(mshr.merges(), 1u);
    EXPECT_EQ(mshr.size(), 1u);
}

TEST(MshrTest, FillRunsEveryWaiter)
{
    MshrFile mshr;
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        mshr.registerMiss(7, [&] { ++fired; });
    mshr.fill(7);
    EXPECT_EQ(fired, 5);
    EXPECT_FALSE(mshr.pending(7));
}

TEST(MshrTest, FillOnUnknownKeyIsNoOp)
{
    MshrFile mshr;
    mshr.fill(99);  // must not crash
    EXPECT_EQ(mshr.size(), 0u);
}

TEST(MshrTest, DistinctKeysTrackedIndependently)
{
    MshrFile mshr;
    int a = 0, b = 0;
    mshr.registerMiss(1, [&] { ++a; });
    mshr.registerMiss(2, [&] { ++b; });
    mshr.fill(2);
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_TRUE(mshr.pending(1));
}

TEST(MshrTest, OverflowCountedButStillAccepted)
{
    MshrFile mshr(2);
    mshr.registerMiss(1, [] {});
    mshr.registerMiss(2, [] {});
    EXPECT_EQ(mshr.overflows(), 0u);
    EXPECT_EQ(mshr.registerMiss(3, [] {}), MshrFile::Outcome::NewMiss);
    EXPECT_EQ(mshr.overflows(), 1u);
    EXPECT_TRUE(mshr.pending(3));
}

TEST(MshrTest, RefillAfterFillIsNewMiss)
{
    MshrFile mshr;
    mshr.registerMiss(5, [] {});
    mshr.fill(5);
    EXPECT_EQ(mshr.registerMiss(5, [] {}), MshrFile::Outcome::NewMiss);
    EXPECT_EQ(mshr.allocations(), 2u);
}

TEST(MshrTest, CallbacksMayRegisterNewMisses)
{
    MshrFile mshr;
    int fired = 0;
    mshr.registerMiss(1, [&] {
        ++fired;
        mshr.registerMiss(2, [&] { ++fired; });
    });
    mshr.fill(1);
    EXPECT_EQ(fired, 1);
    mshr.fill(2);
    EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace mosaic
