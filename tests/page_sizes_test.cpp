/** @file Unit tests for PageSizeHierarchy: validity rules, derived
 *  walk geometry, and the --sizes spec parser. DESIGN.md §13. */

#include <gtest/gtest.h>

#include "common/page_sizes.h"

namespace mosaic {
namespace {

TEST(PageSizesTest, DefaultPairMatchesLegacyConstants)
{
    const PageSizeHierarchy hs;
    ASSERT_TRUE(hs.valid());
    EXPECT_TRUE(hs.isDefaultPair());
    EXPECT_EQ(hs.numLevels(), 2u);
    EXPECT_EQ(hs.bytes(0), kBasePageSize);
    EXPECT_EQ(hs.bytes(1), kLargePageSize);
    EXPECT_EQ(hs.numWalkDepths(), 4u);  // the classic 4-level radix walk
    EXPECT_EQ(hs.coalesceBitDepth(1), 2u);  // the "L3 large bit"
    EXPECT_EQ(hs.toString(), "4K,2M");
}

TEST(PageSizesTest, TridentDerivesFiveWalkDepths)
{
    const PageSizeHierarchy hs = PageSizeHierarchy::trident();
    ASSERT_TRUE(hs.valid());
    EXPECT_FALSE(hs.isDefaultPair());
    EXPECT_EQ(hs.numLevels(), 3u);
    EXPECT_EQ(hs.bytes(1), 64u << 10);
    EXPECT_EQ(hs.numWalkDepths(), 5u);
    // shifts: 39, 30, 21, 16, 12 -- one extra depth at the 64KB boundary.
    EXPECT_EQ(hs.shiftAtDepth(2), 21u);
    EXPECT_EQ(hs.shiftAtDepth(3), 16u);
    EXPECT_EQ(hs.shiftAtDepth(4), 12u);
    EXPECT_EQ(hs.coalesceBitDepth(2), 2u);  // 2MB bit, same as default
    EXPECT_EQ(hs.coalesceBitDepth(1), 3u);  // 64KB bit one depth lower
    EXPECT_EQ(hs.basePagesPer(1), 16u);
    EXPECT_EQ(hs.slotsPerParent(1), 32u);  // 64KB runs per 2MB frame
}

TEST(PageSizesTest, SingleLevelHierarchyIsValid)
{
    const PageSizeHierarchy hs{kBasePageBits};
    ASSERT_TRUE(hs.valid());
    EXPECT_EQ(hs.numLevels(), 1u);
    EXPECT_EQ(hs.topLevel(), 0u);
    EXPECT_EQ(hs.numWalkDepths(), 4u);  // 39, 30, 21, 12
}

TEST(PageSizesTest, InvalidHierarchiesAreRejected)
{
    // Not strictly ascending.
    EXPECT_FALSE((PageSizeHierarchy{21, 12}).valid());
    EXPECT_FALSE((PageSizeHierarchy{12, 12}).valid());
    // Top not on a radix-9 boundary from 48 bits (e.g. 1MB top).
    EXPECT_FALSE((PageSizeHierarchy{12, 20}).valid());
    // Intermediate level too small: 2^(21-14) = 128 runs per frame
    // overflows the FramePool's 64-bit per-level run mask.
    EXPECT_FALSE((PageSizeHierarchy{12, 14, 21}).valid());
    // Base level below the radix index width.
    EXPECT_FALSE((PageSizeHierarchy{8, 21}).valid());
}

TEST(PageSizesTest, ParseAcceptsSuffixBytesAndLog2Forms)
{
    PageSizeHierarchy hs;
    ASSERT_TRUE(PageSizeHierarchy::parse("4K,64K,2M", hs));
    EXPECT_EQ(hs, PageSizeHierarchy::trident());
    ASSERT_TRUE(PageSizeHierarchy::parse("4096,2097152", hs));
    EXPECT_TRUE(hs.isDefaultPair());
    ASSERT_TRUE(PageSizeHierarchy::parse("12,16,21", hs));
    EXPECT_EQ(hs, PageSizeHierarchy::trident());
}

TEST(PageSizesTest, ParseRejectsMalformedSpecs)
{
    PageSizeHierarchy hs;
    EXPECT_FALSE(PageSizeHierarchy::parse("", hs));
    EXPECT_FALSE(PageSizeHierarchy::parse("4K,", hs));
    EXPECT_FALSE(PageSizeHierarchy::parse("4K,3M", hs));    // not pow2
    EXPECT_FALSE(PageSizeHierarchy::parse("2M,4K", hs));    // descending
    EXPECT_FALSE(PageSizeHierarchy::parse("4K,64Q", hs));   // bad suffix
    EXPECT_FALSE(PageSizeHierarchy::parse("4K,8K,64K,512K,2M", hs));
}

TEST(PageSizesTest, GeometryHelpersRoundTrip)
{
    const PageSizeHierarchy hs = PageSizeHierarchy::trident();
    const Addr va = (7ull << 21) + (3ull << 16) + 0x5123;
    EXPECT_EQ(hs.pageBase(va, 0), va & ~Addr(0xFFF));
    EXPECT_EQ(hs.pageBase(va, 1), (7ull << 21) + (3ull << 16));
    EXPECT_EQ(hs.pageBase(va, 2), 7ull << 21);
    EXPECT_EQ(hs.pageNumber(va, 1), (7ull << 5) + 3);
    EXPECT_TRUE(hs.aligned(7ull << 21, 2));
    EXPECT_FALSE(hs.aligned(va, 1));
    EXPECT_EQ(hs.levelName(0), std::string("base"));
    EXPECT_EQ(hs.levelName(2), std::string("large"));
    EXPECT_EQ(hs.levelName(1), std::string("mid"));
}

}  // namespace
}  // namespace mosaic
