/** @file Unit tests for the four-level page table with Mosaic PTE bits. */

#include <gtest/gtest.h>

#include "vm/page_table.h"

namespace mosaic {
namespace {

struct PtRig
{
    RegionPtNodeAllocator alloc{1ull << 32, 64ull << 20};
    PageTable pt{3, alloc};
};

TEST(PageTableTest, UnmappedTranslatesInvalid)
{
    PtRig rig;
    EXPECT_FALSE(rig.pt.translate(0x1000).valid);
    EXPECT_FALSE(rig.pt.isMapped(0x1000));
    EXPECT_FALSE(rig.pt.isResident(0x1000));
}

TEST(PageTableTest, MapTranslateRoundTrip)
{
    PtRig rig;
    rig.pt.mapBasePage(0x40001000, 0x9000);
    const Translation t = rig.pt.translate(0x40001234);
    ASSERT_TRUE(t.valid);
    EXPECT_TRUE(t.resident);
    EXPECT_EQ(t.physAddr, 0x9234u);
    EXPECT_EQ(t.size, PageSize::Base);
    EXPECT_EQ(rig.pt.mappedPages(), 1u);
}

TEST(PageTableTest, NonResidentMapping)
{
    PtRig rig;
    rig.pt.mapBasePage(0x1000, 0x2000, /*resident=*/false);
    EXPECT_TRUE(rig.pt.isMapped(0x1000));
    EXPECT_FALSE(rig.pt.isResident(0x1000));
    EXPECT_FALSE(rig.pt.translate(0x1000).resident);
    rig.pt.markResident(0x1000);
    EXPECT_TRUE(rig.pt.translate(0x1000).resident);
}

TEST(PageTableTest, UnmapInvalidatesAndResets)
{
    PtRig rig;
    rig.pt.mapBasePage(0x5000, 0x6000);
    rig.pt.unmapBasePage(0x5000);
    EXPECT_FALSE(rig.pt.isMapped(0x5000));
    EXPECT_EQ(rig.pt.mappedPages(), 0u);
    // Remap after unmap must work.
    rig.pt.mapBasePage(0x5000, 0x7000);
    EXPECT_EQ(rig.pt.translate(0x5000).physAddr, 0x7000u);
}

TEST(PageTableTest, RemapChangesPhysicalAddress)
{
    PtRig rig;
    rig.pt.mapBasePage(0x5000, 0x6000);
    rig.pt.remapBasePage(0x5000, 0xA000);
    EXPECT_EQ(rig.pt.translate(0x5000).physAddr, 0xA000u);
    EXPECT_EQ(rig.pt.mappedPages(), 1u);
}

TEST(PageTableTest, CoalesceRequiresContiguity)
{
    PtRig rig;
    const Addr va = 5ull << kLargePageBits;
    const Addr pa = 7ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);
    EXPECT_TRUE(rig.pt.isCoalesced(va));
    EXPECT_TRUE(rig.pt.isCoalesced(va + kLargePageSize - 1));
    EXPECT_FALSE(rig.pt.isCoalesced(va + kLargePageSize));

    const Translation t = rig.pt.translate(va + 0x3456);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Large);
    EXPECT_EQ(t.physAddr, pa + 0x3456);
}

TEST(PageTableTest, SplinterRestoresBaseTranslations)
{
    PtRig rig;
    const Addr va = 1ull << kLargePageBits;
    const Addr pa = 3ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);
    rig.pt.splinter(va);
    EXPECT_FALSE(rig.pt.isCoalesced(va));
    const Translation t = rig.pt.translate(va + kBasePageSize);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.size, PageSize::Base);
    EXPECT_EQ(t.physAddr, pa + kBasePageSize);
}

TEST(PageTableDeathTest, CoalesceOfNonContiguousPanics)
{
    PtRig rig;
    const Addr va = 2ull << kLargePageBits;
    const Addr pa = 4ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i) {
        // Swap pages 1 and 2 to break contiguity (page 0 stays aligned
        // so the specific contiguity assertion fires).
        std::uint64_t j = i == 1 ? 2 : (i == 2 ? 1 : i);
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + j * kBasePageSize);
    }
    EXPECT_DEATH(rig.pt.coalesce(va), "contiguous");
}

TEST(PageTableDeathTest, CoalesceOfPartialRegionPanics)
{
    PtRig rig;
    const Addr va = 2ull << kLargePageBits;
    const Addr pa = 4ull << kLargePageBits;
    // Leave the last page unmapped.
    for (std::uint64_t i = 0; i + 1 < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    EXPECT_DEATH(rig.pt.coalesce(va), "contiguous");
}

TEST(PageTableDeathTest, DoubleMapPanics)
{
    PtRig rig;
    rig.pt.mapBasePage(0x1000, 0x2000);
    EXPECT_DEATH(rig.pt.mapBasePage(0x1000, 0x3000), "double map");
}

TEST(PageTableTest, WalkPathHasFourLevels)
{
    PtRig rig;
    rig.pt.mapBasePage(0x123456789000ull, 0x4000);
    ASSERT_EQ(rig.pt.numWalkLevels(), PageTable::kLevels);
    const auto path = rig.pt.walkPath(0x123456789000ull);
    for (unsigned d = 0; d < rig.pt.numWalkLevels(); ++d)
        EXPECT_NE(path[d], kInvalidAddr);
    EXPECT_EQ(path[0] & ~0xFFFull, rig.pt.rootAddr());
    // All PTE addresses are 8-byte aligned; depths past the walk's last
    // level stay invalid.
    for (unsigned d = 0; d < rig.pt.numWalkLevels(); ++d)
        EXPECT_EQ(path[d] % 8, 0u);
    for (unsigned d = rig.pt.numWalkLevels(); d < PageTable::kMaxLevels; ++d)
        EXPECT_EQ(path[d], kInvalidAddr);
}

TEST(PageTableTest, WalkPathTruncatedForUnmappedRegion)
{
    PtRig rig;
    const auto path = rig.pt.walkPath(0x7FFF00000000ull);
    EXPECT_NE(path[0], kInvalidAddr);  // root always exists
    EXPECT_EQ(path[1], kInvalidAddr);
    EXPECT_EQ(path[2], kInvalidAddr);
    EXPECT_EQ(path[3], kInvalidAddr);
}

TEST(PageTableTest, DistinctRegionsUseDistinctNodes)
{
    PtRig rig;
    rig.pt.mapBasePage(0x1000, 0x2000);
    rig.pt.mapBasePage(1ull << 39, 0x3000);
    const auto a = rig.pt.walkPath(0x1000);
    const auto b = rig.pt.walkPath(1ull << 39);
    EXPECT_NE(a[1] & ~0xFFFull, b[1] & ~0xFFFull);
}

TEST(PageTableTest, NodeAllocatorTracksUsage)
{
    RegionPtNodeAllocator alloc(1ull << 32, 1ull << 20);
    PageTable pt(0, alloc);
    const std::uint64_t after_root = alloc.bytesUsed();
    EXPECT_EQ(after_root, kBasePageSize);
    pt.mapBasePage(0x1000, 0x2000);
    // Mapping one page allocates three more nodes (L2, L3, L4).
    EXPECT_EQ(alloc.bytesUsed(), 4 * kBasePageSize);
}

}  // namespace
}  // namespace mosaic
