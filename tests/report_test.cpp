/** @file Tests for table formatting and result reporting helpers. */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.h"
#include "runner/json_report.h"
#include "runner/report.h"
#include "runner/simulation.h"
#include "workload/apps.h"

namespace mosaic {
namespace {

/**
 * Tiny recursive-descent JSON syntax checker: enough grammar to verify
 * that every byte of a report parses as one well-formed JSON value.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        i_ = 0;
        if (!value())
            return false;
        ws();
        return i_ == s_.size();
    }

  private:
    void
    ws()
    {
        while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                                  s_[i_] == '\n' || s_[i_] == '\r'))
            ++i_;
    }

    bool eat(char c)
    {
        ws();
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (i_ < s_.size() && s_[i_] != '"') {
            const auto c = static_cast<unsigned char>(s_[i_]);
            if (c < 0x20)
                return false;  // raw control character: invalid JSON
            if (s_[i_] == '\\') {
                ++i_;
                if (i_ >= s_.size())
                    return false;
                const char e = s_[i_];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k) {
                        ++i_;
                        if (i_ >= s_.size() || !std::isxdigit(
                                static_cast<unsigned char>(s_[i_])))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    return false;
                }
            }
            ++i_;
        }
        return i_ < s_.size() && s_[i_++] == '"';
    }

    bool
    number()
    {
        const std::size_t start = i_;
        if (i_ < s_.size() && s_[i_] == '-')
            ++i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                s_[i_] == '+' || s_[i_] == '-'))
            ++i_;
        return i_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(i_, n, word) != 0)
            return false;
        i_ += n;
        return true;
    }

    bool
    value()
    {
        ws();
        if (i_ >= s_.size())
            return false;
        const char c = s_[i_];
        if (c == '{') {
            ++i_;
            ws();
            if (eat('}'))
                return true;
            do {
                ws();
                if (!string() || !eat(':') || !value())
                    return false;
            } while (eat(','));
            return eat('}');
        }
        if (c == '[') {
            ++i_;
            ws();
            if (eat(']'))
                return true;
            do {
                if (!value())
                    return false;
            } while (eat(','));
            return eat(']');
        }
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

/** One small, fast, seeded simulation shared by the round-trip tests. */
const SimResult &
miniSimResult()
{
    static const SimResult result = [] {
        Workload w = scaledWorkload(homogeneousWorkload("HISTO", 2), 0.08);
        for (AppParams &a : w.apps)
            a.instrPerWarp = 300;
        SimConfig cfg = SimConfig::mosaicDefault().withIoCompression(16.0);
        cfg.gpu.sm.warpsPerSm = 8;
        cfg.seed = 7;
        return runSimulation(w, cfg);
    }();
    return result;
}

/** Captures a TextTable's print output through a temp file. */
std::string
printed(const TextTable &t)
{
    std::FILE *f = std::tmpfile();
    t.print(f);
    std::fseek(f, 0, SEEK_SET);
    std::string out;
    char buf[256];
    while (std::fgets(buf, sizeof(buf), f) != nullptr)
        out += buf;
    std::fclose(f);
    return out;
}

TEST(TextTableTest, ColumnsAlignAcrossRows)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    const std::string out = printed(t);
    // Every line starts its second column at the same offset.
    const auto header_pos = out.find("value");
    const auto row1_pos = out.find('1', out.find("a\n") != std::string::npos
                                            ? out.find("a\n")
                                            : 0);
    ASSERT_NE(header_pos, std::string::npos);
    (void)row1_pos;
    // The separator line is as wide as the widest row.
    const auto sep_start = out.find("----");
    ASSERT_NE(sep_start, std::string::npos);
}

TEST(TextTableTest, HandlesRaggedRows)
{
    TextTable t;
    t.header({"a"});
    t.row({"1", "2", "3"});
    const std::string out = printed(t);
    EXPECT_NE(out.find('3'), std::string::npos);
}

TEST(TextTableTest, EmptyTablePrintsNothingButHeader)
{
    TextTable t;
    t.header({"only", "header"});
    const std::string out = printed(t);
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TextTable::pct(0.123456, 2), "12.35%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(JsonCheckerTest, AcceptsAndRejects)
{
    EXPECT_TRUE(JsonChecker("{}").valid());
    EXPECT_TRUE(JsonChecker("{\"a\":[1,-2.5e3,\"s\",true,null]}").valid());
    EXPECT_TRUE(JsonChecker("{\"t\":\"a\\tb\\u001f\"}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":}").valid());
    EXPECT_FALSE(JsonChecker("{\"a\":1,}").valid());
    EXPECT_FALSE(JsonChecker("{} trailing").valid());
    EXPECT_FALSE(JsonChecker(std::string("{\"a\tb\":1}")).valid());
}

TEST(JsonReportTest, EscapesControlCharactersInStrings)
{
    // Pre-refactor each serializer escaped only quotes and backslashes;
    // a workload name with a tab produced unparseable JSON.
    EXPECT_EQ(detail::jsonEscape("a\tb\x01"), "a\\tb\\u0001");
    SimResult r;
    r.workloadName = "tab\there";
    r.configLabel = "quote\"and\\slash";
    EXPECT_TRUE(JsonChecker(toJson(r)).valid());
}

TEST(JsonReportTest, SimResultJsonParses)
{
    const std::string json = toJson(miniSimResult());
    EXPECT_TRUE(JsonChecker(json).valid());
    // The registry section rides along inside the legacy document.
    EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
    EXPECT_NE(json.find("\"vm.walker.walks\":"), std::string::npos);
}

TEST(JsonReportTest, MetricsJsonParsesAndNamesManager)
{
    const std::string json = metricsToJson(miniSimResult(), "Mosaic");
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("\"manager\":\"Mosaic\""), std::string::npos);
    EXPECT_NE(json.find("\"samples\":["), std::string::npos);
}

TEST(JsonReportTest, RegistrySnapshotMatchesLegacyScalars)
{
    // The legacy SimResult scalars are now *derived from* the registry
    // snapshot; this pins the equivalence on a real seeded simulation.
    const SimResult &r = miniSimResult();
    const MetricsSnapshot &m = r.metrics;
    EXPECT_EQ(m.atCycle, r.totalCycles);
    EXPECT_EQ(m.u64("sim.cycles"), r.totalCycles);
    EXPECT_EQ(m.u64("vm.walker.walks"), r.pageWalks);
    EXPECT_EQ(m.u64("iobus.paging.farFaults"), r.farFaults);
    EXPECT_EQ(m.u64("iobus.paging.bytesTransferred"), r.pagedBytes);
    EXPECT_EQ(m.u64("mm.peakAllocatedBytes"), r.allocatedBytes);
    EXPECT_EQ(m.u64("sim.neededBytes"), r.neededBytes);
    EXPECT_EQ(m.u64("gpu.stallCycles"), r.gpuStallCycles);
    EXPECT_EQ(m.u64("mm.coalesceOps"), r.mm.coalesceOps);
    EXPECT_EQ(m.u64("mm.splinterOps"), r.mm.splinterOps);
    EXPECT_EQ(m.u64("mm.compactions"), r.mm.compactions);
    EXPECT_EQ(m.u64("mm.migrations"), r.mm.migrations);
    EXPECT_EQ(m.u64("mm.pagesBacked"), r.mm.pagesBacked);
    EXPECT_EQ(m.u64("mm.pagesReleased"), r.mm.pagesReleased);

    const std::uint64_t l1_requests = m.u64("vm.translation.requests");
    const std::uint64_t l1_hits = m.u64("vm.translation.l1Hits");
    ASSERT_GT(l1_requests, 0u);
    EXPECT_DOUBLE_EQ(r.l1TlbHitRate, double(l1_hits) / double(l1_requests));

    const std::uint64_t l2_acc = m.u64("vm.tlb.l2.base.accesses") +
                                 m.u64("vm.tlb.l2.large.accesses");
    const std::uint64_t l2_hits = m.u64("vm.tlb.l2.base.hits") +
                                  m.u64("vm.tlb.l2.large.hits");
    if (l2_acc > 0)
        EXPECT_DOUBLE_EQ(r.l2TlbHitRate, double(l2_hits) / double(l2_acc));

    // Per-app labeled families cover every app in the workload.
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
        const std::string key = "vm.translation.app.requests{app=" +
                                std::to_string(i) + "}";
        EXPECT_TRUE(m.has(key)) << key;
    }
}

TEST(JsonReportTest, IntervalSamplingIsObservationOnly)
{
    Workload w = scaledWorkload(homogeneousWorkload("HISTO", 1), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 300;
    SimConfig cfg = SimConfig::mosaicDefault().withIoCompression(16.0);
    cfg.gpu.sm.warpsPerSm = 8;
    cfg.seed = 11;

    const SimResult plain = runSimulation(w, cfg);
    const SimResult sampled =
        runSimulation(w, cfg.withMetricsSampling(20000));

    // Sampling must not perturb the simulation...
    EXPECT_EQ(plain.totalCycles, sampled.totalCycles);
    EXPECT_EQ(plain.pageWalks, sampled.pageWalks);
    EXPECT_EQ(plain.farFaults, sampled.farFaults);
    EXPECT_EQ(toJson(plain), toJson(sampled));
    // ...and must actually record monotone interval snapshots.
    EXPECT_TRUE(plain.metricsSamples.empty());
    ASSERT_FALSE(sampled.metricsSamples.empty());
    Cycles prev = 0;
    for (const MetricsSnapshot &s : sampled.metricsSamples) {
        EXPECT_GE(s.atCycle, prev);
        prev = s.atCycle;
        EXPECT_LE(s.u64("vm.walker.walks"), sampled.pageWalks);
    }
}

TEST(JsonReportTest, ManagerKindNames)
{
    EXPECT_STREQ(managerKindName(ManagerKind::Mosaic), "Mosaic");
    EXPECT_STREQ(managerKindName(ManagerKind::LargeOnly), "2MB-only");
    EXPECT_STREQ(managerKindName(ManagerKind::GpuMmu), "GPU-MMU");
}

}  // namespace
}  // namespace mosaic
