/** @file Tests for table formatting and result reporting helpers. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/table.h"
#include "runner/report.h"

namespace mosaic {
namespace {

/** Captures a TextTable's print output through a temp file. */
std::string
printed(const TextTable &t)
{
    std::FILE *f = std::tmpfile();
    t.print(f);
    std::fseek(f, 0, SEEK_SET);
    std::string out;
    char buf[256];
    while (std::fgets(buf, sizeof(buf), f) != nullptr)
        out += buf;
    std::fclose(f);
    return out;
}

TEST(TextTableTest, ColumnsAlignAcrossRows)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    const std::string out = printed(t);
    // Every line starts its second column at the same offset.
    const auto header_pos = out.find("value");
    const auto row1_pos = out.find('1', out.find("a\n") != std::string::npos
                                            ? out.find("a\n")
                                            : 0);
    ASSERT_NE(header_pos, std::string::npos);
    (void)row1_pos;
    // The separator line is as wide as the widest row.
    const auto sep_start = out.find("----");
    ASSERT_NE(sep_start, std::string::npos);
}

TEST(TextTableTest, HandlesRaggedRows)
{
    TextTable t;
    t.header({"a"});
    t.row({"1", "2", "3"});
    const std::string out = printed(t);
    EXPECT_NE(out.find('3'), std::string::npos);
}

TEST(TextTableTest, EmptyTablePrintsNothingButHeader)
{
    TextTable t;
    t.header({"only", "header"});
    const std::string out = printed(t);
    EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTableTest, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TextTable::pct(0.123456, 2), "12.35%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

}  // namespace
}  // namespace mosaic
