/** @file Unit and property tests for the set-associative tag store. */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cache/set_assoc_cache.h"

namespace mosaic {
namespace {

TEST(SetAssocCacheTest, MissThenHit)
{
    SetAssocCache cache(4, 2);
    EXPECT_FALSE(cache.access(100));
    cache.insert(100);
    EXPECT_TRUE(cache.access(100));
    EXPECT_TRUE(cache.contains(100));
}

TEST(SetAssocCacheTest, NoVictimWhileSetHasRoom)
{
    SetAssocCache cache(1, 4);
    for (std::uint64_t k = 0; k < 4; ++k)
        EXPECT_FALSE(cache.insert(k).has_value());
    EXPECT_TRUE(cache.insert(4).has_value());
}

TEST(SetAssocCacheTest, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache cache(1, 3);
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    // Touch 1 and 3; 2 becomes LRU.
    cache.access(1);
    cache.access(3);
    const auto victim = cache.insert(4);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key, 2u);
}

TEST(SetAssocCacheTest, FifoEvictsOldestInsertion)
{
    SetAssocCache cache(1, 3, ReplacementPolicy::Fifo);
    cache.insert(1);
    cache.insert(2);
    cache.insert(3);
    cache.access(1);  // recency must not matter for FIFO
    const auto victim = cache.insert(4);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key, 1u);
}

TEST(SetAssocCacheTest, RandomEvictsSomeResident)
{
    SetAssocCache cache(1, 4, ReplacementPolicy::Random, 99);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.insert(k);
    const auto victim = cache.insert(10);
    ASSERT_TRUE(victim.has_value());
    EXPECT_LT(victim->key, 4u);
}

TEST(SetAssocCacheTest, DirtyBitTravelsWithVictim)
{
    SetAssocCache cache(1, 1);
    cache.insert(5);
    cache.access(5, /*markDirty=*/true);
    const auto victim = cache.insert(6);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);

    const auto clean_victim = cache.insert(7);
    ASSERT_TRUE(clean_victim.has_value());
    EXPECT_FALSE(clean_victim->dirty);
}

TEST(SetAssocCacheTest, KeysMapToDistinctSets)
{
    SetAssocCache cache(4, 1);
    // Keys 0..3 map to sets 0..3: no evictions.
    for (std::uint64_t k = 0; k < 4; ++k)
        EXPECT_FALSE(cache.insert(k).has_value());
    // Key 4 collides with key 0.
    const auto victim = cache.insert(4);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->key, 0u);
}

TEST(SetAssocCacheTest, InvalidateRemovesEntry)
{
    SetAssocCache cache(2, 2);
    cache.insert(10);
    EXPECT_TRUE(cache.invalidate(10));
    EXPECT_FALSE(cache.contains(10));
    EXPECT_FALSE(cache.invalidate(10));
}

TEST(SetAssocCacheTest, InvalidateIfFiltersByPredicate)
{
    SetAssocCache cache(8, 2);
    for (std::uint64_t k = 0; k < 10; ++k)
        cache.insert(k);
    const std::size_t removed =
        cache.invalidateIf([](std::uint64_t k) { return k % 2 == 0; });
    EXPECT_EQ(removed, 5u);
    EXPECT_FALSE(cache.contains(4));
    EXPECT_TRUE(cache.contains(5));
}

TEST(SetAssocCacheTest, FlushEmptiesCache)
{
    SetAssocCache cache(2, 2);
    cache.insert(1);
    cache.insert(2);
    cache.flush();
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(SetAssocCacheDeathTest, DoubleInsertPanics)
{
    SetAssocCache cache(2, 2);
    cache.insert(1);
    EXPECT_DEATH(cache.insert(1), "present");
}

/** Property sweep: geometry x policy invariants. */
class CacheGeometryTest
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, ReplacementPolicy>>
{
};

TEST_P(CacheGeometryTest, OccupancyNeverExceedsCapacityAndHitsAreExact)
{
    const auto [sets, ways, policy] = GetParam();
    SetAssocCache cache(sets, ways, policy, 7);
    std::set<std::uint64_t> resident;

    Rng rng(123);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = rng.below(sets * ways * 4);
        const bool hit = cache.access(key);
        EXPECT_EQ(hit, resident.count(key) > 0) << "key " << key;
        if (!hit) {
            const auto victim = cache.insert(key);
            if (victim)
                resident.erase(victim->key);
            resident.insert(key);
        }
        ASSERT_LE(cache.occupancy(), cache.capacity());
        ASSERT_EQ(cache.occupancy(), resident.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 32),
                       ::testing::Values<std::size_t>(1, 2, 16),
                       ::testing::Values(ReplacementPolicy::Lru,
                                         ReplacementPolicy::Fifo,
                                         ReplacementPolicy::Random)));

}  // namespace
}  // namespace mosaic
