/**
 * @file
 * Sharded-engine determinism tests (DESIGN.md §12).
 *
 * The sharded engine's lane structure is fixed -- one EventQueue per SM
 * plus a hub lane -- independent of how many worker threads execute the
 * SM phase. Every observable result must therefore be byte-identical
 * for every worker count N >= 1: the full metrics-snapshot JSON at
 * N in {2, 4, 8} is compared byte-for-byte against N = 1 for all three
 * manager kinds. Any cross-thread ordering leak (an SM touching shared
 * state outside the hub phase, a merge that isn't canonically sorted)
 * shows up here as a counter diff.
 *
 * Serial (engineShards = 0) output is intentionally NOT compared: the
 * sharded engine is a distinct timing model (completion deliveries
 * drift by at most one epoch window), pinned by its own golden files
 * in golden_test.cpp.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "runner/json_report.h"
#include "runner/simulation.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

/** Same pinned cell as golden_test.cpp: two-app het mix, full spine. */
Workload
pinnedWorkload()
{
    Workload w = scaledWorkload(heterogeneousWorkload(2, 42), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 300;
    return w;
}

SimConfig
pinnedConfig(SimConfig c)
{
    c.gpu.sm.warpsPerSm = 8;
    return c.withIoCompression(16.0);
}

std::string
snapshotAt(const SimConfig &base, unsigned shards)
{
    const SimConfig c = base.withEngineShards(shards);
    const SimResult result = runSimulation(pinnedWorkload(), c);
    return metricsToJson(result, managerKindName(c.manager));
}

void
expectShardCountInvariant(const SimConfig &base)
{
    const std::string reference = snapshotAt(base, 1);
    ASSERT_FALSE(reference.empty());
    for (const unsigned n : {2u, 4u, 8u}) {
        const std::string doc = snapshotAt(base, n);
        if (doc == reference)
            continue;
        std::size_t at = 0;
        while (at < doc.size() && at < reference.size() &&
               doc[at] == reference[at])
            ++at;
        const std::size_t from = at < 80 ? 0 : at - 80;
        FAIL() << base.label << " diverges at " << n
               << " workers (byte " << at << ")\n  N=1: ..."
               << reference.substr(from, 160) << "\n  N=" << n << ": ..."
               << doc.substr(from, 160);
    }
}

TEST(ShardTest, MosaicSnapshotIsWorkerCountInvariant)
{
    expectShardCountInvariant(pinnedConfig(SimConfig::mosaicDefault()));
}

TEST(ShardTest, GpuMmuSnapshotIsWorkerCountInvariant)
{
    expectShardCountInvariant(pinnedConfig(SimConfig::baseline()));
}

TEST(ShardTest, LargeOnlySnapshotIsWorkerCountInvariant)
{
    expectShardCountInvariant(pinnedConfig(SimConfig::largeOnly()));
}

/** Invariant checking must not perturb the sharded result either. */
TEST(ShardTest, InvariantChecksAreObservationOnlyWhenSharded)
{
    const SimConfig base = pinnedConfig(SimConfig::mosaicDefault());
    EXPECT_EQ(snapshotAt(base, 2),
              snapshotAt(base.withInvariantChecks(), 2));
}

/** The churn/fragmentation stress path stays deterministic too. */
TEST(ShardTest, ChurnStressIsWorkerCountInvariant)
{
    SimConfig c = pinnedConfig(SimConfig::mosaicDefault());
    c.churn.enabled = true;
    c.fragmentationIndex = 0.5;
    c.fragmentationOccupancy = 0.3;
    EXPECT_EQ(snapshotAt(c, 1), snapshotAt(c, 8));
}

/**
 * Hub sub-lanes under non-default channel interleaves: Page/Frame
 * map a request's channel away from its L2 bank's sub-lane, so the
 * cross-sub handoff path (DramModel::accessFromSub routing through the
 * sub outbox merge) carries real traffic. Byte-equality across worker
 * counts proves the canonical (cycle, sub, sequence) merge holds for
 * it too.
 */
TEST(ShardTest, PageInterleaveIsWorkerCountInvariant)
{
    SimConfig c = pinnedConfig(SimConfig::mosaicDefault());
    c.dram.channelInterleave = ChannelInterleave::Page;
    EXPECT_EQ(snapshotAt(c, 1), snapshotAt(c, 8));
}

TEST(ShardTest, FrameInterleaveIsWorkerCountInvariant)
{
    SimConfig c = pinnedConfig(SimConfig::mosaicDefault());
    c.dram.channelInterleave = ChannelInterleave::Frame;
    EXPECT_EQ(snapshotAt(c, 1), snapshotAt(c, 4));
}

/** Sharded runs expose the per-sub-lane self-profiler metrics: one
 *  sub-lane per DRAM channel, each with its own occupancy gauge. */
TEST(ShardTest, SubLaneMetricsAreRegistered)
{
    const SimConfig base = pinnedConfig(SimConfig::mosaicDefault());
    const std::string doc = snapshotAt(base, 2);
    EXPECT_NE(doc.find("engine.shard.hub.subLanes"), std::string::npos);
    EXPECT_NE(doc.find("engine.shard.hub.sub.occupancy"),
              std::string::npos);
    EXPECT_NE(doc.find("engine.shard.hub.sub.events"), std::string::npos);
    // Serial runs must register none of it.
    const SimResult serial = runSimulation(pinnedWorkload(),
                                           base.withEngineShards(0));
    const std::string serial_doc =
        metricsToJson(serial, managerKindName(base.manager));
    EXPECT_EQ(serial_doc.find("engine.shard.hub.sub"), std::string::npos);
}

/** MOSAIC_SIM_SHARDS engages the sharded engine without config edits. */
TEST(ShardTest, EnvVarSelectsShardedEngine)
{
    const SimConfig base = pinnedConfig(SimConfig::mosaicDefault());
    const std::string from_config = snapshotAt(base, 4);
    ::setenv("MOSAIC_SIM_SHARDS", "4", /*overwrite=*/1);
    const std::string from_env = snapshotAt(base, 0);
    ::unsetenv("MOSAIC_SIM_SHARDS");
    EXPECT_EQ(from_config, from_env);
}

}  // namespace
}  // namespace mosaic
