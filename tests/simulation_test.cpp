/** @file Tests of the top-level runner: assembly, partitioning, config
 *  presets, prefetch vs demand, churn, and result plumbing. */

#include <gtest/gtest.h>

#include "runner/report.h"
#include "runner/simulation.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

Workload
smallWorkload(const std::string &app, unsigned copies)
{
    Workload w = scaledWorkload(homogeneousWorkload(app, copies), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 300;
    return w;
}

SimConfig
fast(SimConfig c)
{
    c.gpu.sm.warpsPerSm = 8;
    return c.withIoCompression(16.0);
}

TEST(SimulationTest, PresetLabelsAndManagers)
{
    EXPECT_EQ(SimConfig::baseline().manager, ManagerKind::GpuMmu);
    EXPECT_EQ(SimConfig::mosaicDefault().manager, ManagerKind::Mosaic);
    EXPECT_EQ(SimConfig::largeOnly().manager, ManagerKind::LargeOnly);
    EXPECT_TRUE(SimConfig::idealTlb().translation.idealTlb);
    EXPECT_FALSE(SimConfig::baseline().withoutPaging().demandPaging);
    EXPECT_TRUE(SimConfig::baseline().withoutPaging(true).chargePrefetchBus);
}

TEST(SimulationTest, IoCompressionScalesBothConstants)
{
    const SimConfig base = SimConfig::baseline();
    const SimConfig fastio = base.withIoCompression(4.0);
    EXPECT_DOUBLE_EQ(fastio.pcie.bytesPerCycle,
                     base.pcie.bytesPerCycle * 4.0);
    EXPECT_EQ(fastio.pcie.fixedOverheadCycles,
              base.pcie.fixedOverheadCycles / 4);
}

TEST(SimulationTest, EveryAppGetsItsOwnSmPartition)
{
    const Workload w = smallWorkload("SCP", 3);
    const SimResult r = runSimulation(w, fast(SimConfig::baseline()));
    ASSERT_EQ(r.apps.size(), 3u);
    unsigned total = 0;
    for (const AppResult &app : r.apps) {
        EXPECT_EQ(app.smCount, 10u);
        total += app.smCount;
        EXPECT_GT(app.instructions, 0u);
        EXPECT_GT(app.ipc, 0.0);
    }
    EXPECT_EQ(total, 30u);
}

TEST(SimulationTest, InstructionCountMatchesWarpBudget)
{
    const Workload w = smallWorkload("SCP", 1);
    const SimResult r = runSimulation(w, fast(SimConfig::baseline()));
    // 30 SMs x 8 warps x 300 instructions.
    EXPECT_EQ(r.apps[0].instructions, 30u * 8u * 300u);
}

TEST(SimulationTest, PrefetchModeHasNoFarFaults)
{
    const Workload w = smallWorkload("SCP", 1);
    const SimResult r = runSimulation(
        w, fast(SimConfig::baseline().withoutPaging()));
    EXPECT_EQ(r.farFaults, 0u);
    EXPECT_GT(r.apps[0].instructions, 0u);
}

TEST(SimulationTest, DemandModeTransfersTouchedBytes)
{
    const Workload w = smallWorkload("SCP", 1);
    const SimResult r = runSimulation(w, fast(SimConfig::baseline()));
    EXPECT_GT(r.farFaults, 0u);
    EXPECT_EQ(r.pagedBytes, r.farFaults * kBasePageSize);
}

TEST(SimulationTest, ChurnProducesAllocationActivity)
{
    const Workload w = smallWorkload("HISTO", 2);
    SimConfig cfg = fast(SimConfig::mosaicDefault());
    cfg.churn.enabled = true;
    cfg.churn.periodCycles = 5000;
    const SimResult churned = runSimulation(w, cfg);
    SimConfig quiet = cfg;
    quiet.churn.enabled = false;
    const SimResult steady = runSimulation(w, quiet);
    EXPECT_GT(churned.mm.pagesReleased, steady.mm.pagesReleased);
    EXPECT_GT(churned.mm.regionsReserved, steady.mm.regionsReserved);
}

TEST(SimulationTest, ResultCarriesSubsystemStats)
{
    const Workload w = smallWorkload("HISTO", 1);
    const SimResult r = runSimulation(w, fast(SimConfig::baseline()));
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.pageWalks, 0u);
    EXPECT_GT(r.avgWalkLatency, 0.0);
    EXPECT_GT(r.neededBytes, 0u);
    EXPECT_GT(r.allocatedBytes, 0u);
    EXPECT_GT(r.dramRowHits + r.dramRowMisses, 0u);
    EXPECT_GE(r.l1CacheHitRate, 0.0);
    EXPECT_LE(r.l1CacheHitRate, 1.0);
}

TEST(SimulationTest, SeedChangesFaultTiming)
{
    const Workload w = smallWorkload("BFS", 1);
    SimConfig a = fast(SimConfig::baseline());
    SimConfig b = a;
    b.seed = 999;
    const SimResult ra = runSimulation(w, a);
    const SimResult rb = runSimulation(w, b);
    // Different seeds give different access streams; cycle counts differ.
    EXPECT_NE(ra.totalCycles, rb.totalCycles);
}

TEST(SimulationTest, ReportPrintingDoesNotCrash)
{
    const Workload w = smallWorkload("SCP", 1);
    const SimConfig cfg = fast(SimConfig::mosaicDefault());
    const SimResult r = runSimulation(w, cfg);
    std::FILE *sink = std::fopen("/dev/null", "w");
    ASSERT_NE(sink, nullptr);
    printConfigBanner(cfg, sink);
    printSimResult(r, sink);
    std::fclose(sink);
}

TEST(SimulationTest, RoundRobinSchedulerRunsToCompletion)
{
    const Workload w = smallWorkload("SCP", 1);
    SimConfig cfg = fast(SimConfig::baseline());
    cfg.gpu.sm.scheduler = WarpSchedPolicy::RoundRobin;
    const SimResult r = runSimulation(w, cfg);
    EXPECT_EQ(r.apps[0].instructions, 30u * 8u * 300u);
}

TEST(SimulationTest, PageWalkCacheReducesWalkLatency)
{
    const Workload w = smallWorkload("HISTO", 1);
    SimConfig base = fast(SimConfig::baseline());
    SimConfig pwc = base;
    pwc.walker.usePageWalkCache = true;
    const SimResult r_base = runSimulation(w, base);
    const SimResult r_pwc = runSimulation(w, pwc);
    EXPECT_LT(r_pwc.avgWalkLatency, r_base.avgWalkLatency);
}

}  // namespace
}  // namespace mosaic
