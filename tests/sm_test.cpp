/** @file Unit tests for the SM model: scheduling, lockstep, faults. */

#include <gtest/gtest.h>

#include <deque>

#include "engine/event_queue.h"
#include "gpu/gpu.h"
#include "gpu/sm.h"
#include "mm/gpu_mmu_manager.h"

namespace mosaic {
namespace {

/** Scripted warp stream for precise control in tests. */
class ScriptedStream : public WarpStream
{
  public:
    explicit ScriptedStream(std::deque<WarpInstr> script)
        : script_(std::move(script))
    {
    }

    bool
    next(WarpInstr &out) override
    {
        if (script_.empty())
            return false;
        out = script_.front();
        script_.pop_front();
        return true;
    }

    void saveState(ckpt::Writer &) const override {}
    void loadState(ckpt::Reader &) override {}

  private:
    std::deque<WarpInstr> script_;
};

WarpInstr
computeInstr(Cycles latency)
{
    WarpInstr i;
    i.isMemory = false;
    i.computeLatency = latency;
    return i;
}

WarpInstr
memInstr(std::initializer_list<Addr> lines, bool store = false)
{
    WarpInstr i;
    i.isMemory = true;
    i.isStore = store;
    for (const Addr a : lines)
        i.lineAddrs[i.numLines++] = a;
    return i;
}

struct SmRig
{
    EventQueue ev;
    DramModel dram;
    CacheHierarchy caches;
    PageTableWalker walker;
    TranslationService xlate;
    RegionPtNodeAllocator alloc{1ull << 33, 64ull << 20};
    GpuMmuManager mgr{0, 64 * kLargePageSize};
    PageTable pt{0, alloc};
    PcieBus bus{ev, PcieConfig{}};
    DemandPager pager{ev, bus, mgr};
    bool done = false;

    explicit SmRig()
        : dram(ev, DramConfig{}),
          caches(ev, dram, CacheHierarchyConfig{}),
          walker(ev, caches, WalkerConfig{}),
          xlate(ev, walker, 2, TranslationConfig{})
    {
        mgr.setEnv(ManagerEnv{});
        mgr.registerApp(0, pt);
    }

    Sm
    makeSm(SmConfig cfg = SmConfig{})
    {
        return Sm(ev, 0, pt, xlate, caches, &pager, cfg,
                  [this] { done = true; });
    }
};

TEST(SmTest, RunsAllInstructionsAndSignalsCompletion)
{
    SmRig rig;
    Sm sm = rig.makeSm();
    std::deque<WarpInstr> script;
    for (int i = 0; i < 10; ++i)
        script.push_back(computeInstr(2));
    sm.addWarp(std::make_unique<ScriptedStream>(script));
    sm.start(0);
    rig.ev.runAll();
    EXPECT_TRUE(rig.done);
    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.stats().instructions, 10u);
    EXPECT_EQ(sm.stats().memInstructions, 0u);
}

TEST(SmTest, IssuesAtMostOneInstructionPerCycle)
{
    SmRig rig;
    Sm sm = rig.makeSm();
    // Two warps of back-to-back 1-cycle compute: 20 instructions need at
    // least 20 cycles through one issue port.
    for (int w = 0; w < 2; ++w) {
        std::deque<WarpInstr> script;
        for (int i = 0; i < 10; ++i)
            script.push_back(computeInstr(1));
        sm.addWarp(std::make_unique<ScriptedStream>(script));
    }
    sm.start(0);
    rig.ev.runAll();
    EXPECT_GE(sm.stats().finishedAt, 19u);
}

TEST(SmTest, MemoryInstructionBlocksWarpUntilDataReturns)
{
    SmRig rig;
    rig.mgr.backPage(0, 0x10000);
    Sm sm = rig.makeSm();
    sm.addWarp(std::make_unique<ScriptedStream>(
        std::deque<WarpInstr>{memInstr({0x10000}), computeInstr(1)}));
    sm.start(0);
    rig.ev.runAll();
    // Finish time must include a real memory round trip (translation
    // walk + DRAM), far above the 2 issue cycles.
    EXPECT_GT(sm.stats().finishedAt, 100u);
    EXPECT_EQ(sm.stats().memInstructions, 1u);
}

TEST(SmTest, SimtLockstepWaitsForAllLines)
{
    SmRig rig;
    rig.mgr.backPage(0, 0x10000);
    rig.mgr.backPage(0, 0x20000);
    rig.mgr.backPage(0, 0x30000);

    // Warm one line so the others dominate the stall.
    SmRig single;
    (void)single;

    Sm sm = rig.makeSm();
    sm.addWarp(std::make_unique<ScriptedStream>(std::deque<WarpInstr>{
        memInstr({0x10000, 0x20000, 0x30000})}));
    sm.start(0);
    rig.ev.runAll();
    EXPECT_TRUE(sm.done());
    // Three pages translated -> three walks issued.
    EXPECT_EQ(rig.xlate.stats().walksIssued, 3u);
}

TEST(SmTest, FarFaultResolvesAndRetries)
{
    SmRig rig;
    rig.mgr.reserveRegion(0, 0x100000, 16 * kBasePageSize);
    Sm sm = rig.makeSm();
    sm.addWarp(std::make_unique<ScriptedStream>(
        std::deque<WarpInstr>{memInstr({0x100000})}));
    sm.start(0);
    rig.ev.runAll();
    EXPECT_TRUE(sm.done());
    EXPECT_GE(sm.stats().farFaultStalls, 1u);
    EXPECT_TRUE(rig.pt.isResident(0x100000));
    // The fault costs a PCIe round trip: ~56k cycles.
    EXPECT_GT(sm.stats().finishedAt, 50000u);
}

TEST(SmTest, GtoPrefersLastIssuedWarp)
{
    SmRig rig;
    Sm sm = rig.makeSm();
    // Warp 0: long compute then more work; warp 1: steady stream.
    // Under GTO, once warp 1 issues it keeps issuing while warp 0 waits.
    std::deque<WarpInstr> w0{computeInstr(50), computeInstr(1)};
    std::deque<WarpInstr> w1;
    for (int i = 0; i < 20; ++i)
        w1.push_back(computeInstr(1));
    sm.addWarp(std::make_unique<ScriptedStream>(w0));
    sm.addWarp(std::make_unique<ScriptedStream>(w1));
    sm.start(0);
    rig.ev.runAll();
    EXPECT_EQ(sm.stats().instructions, 22u);
    EXPECT_TRUE(sm.done());
}

TEST(SmTest, StallUntilDelaysIssue)
{
    SmRig rig;
    Sm sm = rig.makeSm();
    sm.addWarp(std::make_unique<ScriptedStream>(
        std::deque<WarpInstr>{computeInstr(1)}));
    sm.stallUntil(500);
    sm.start(0);
    rig.ev.runAll();
    EXPECT_GE(sm.stats().finishedAt, 500u);
}

TEST(GpuTest, PartitionSmsEvenlyWithRemainder)
{
    EXPECT_EQ(Gpu::partitionSms(30, 1), (std::vector<unsigned>{30}));
    EXPECT_EQ(Gpu::partitionSms(30, 4),
              (std::vector<unsigned>{8, 8, 7, 7}));
    EXPECT_EQ(Gpu::partitionSms(30, 5),
              (std::vector<unsigned>{6, 6, 6, 6, 6}));
}

TEST(GpuTest, StallAllReachesEverySm)
{
    SmRig rig;
    GpuConfig cfg;
    cfg.numSms = 2;
    Gpu gpu(rig.ev, cfg);
    int finished = 0;
    for (int i = 0; i < 2; ++i) {
        const SmId id = gpu.createSm(rig.pt, rig.xlate, rig.caches,
                                     &rig.pager, [&] { ++finished; });
        gpu.sm(id).addWarp(std::make_unique<ScriptedStream>(
            std::deque<WarpInstr>{computeInstr(1)}));
    }
    gpu.stallAll(1000);
    gpu.startAll(0);
    rig.ev.runAll();
    EXPECT_EQ(finished, 2);
    EXPECT_TRUE(gpu.allDone());
    for (SmId id = 0; id < 2; ++id)
        EXPECT_GE(gpu.sm(id).stats().finishedAt, 1000u);
    EXPECT_EQ(gpu.totalStallCycles(), 1000u);
}

}  // namespace
}  // namespace mosaic
