/** @file Tests for the metrics registry and the shared JSON writer. */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json_writer.h"
#include "common/stats.h"
#include "common/stats_registry.h"

namespace mosaic {
namespace {

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, EscapesControlCharacters)
{
    // The historical per-file escapers let \t, \r, and other control
    // characters through raw, producing invalid JSON.
    EXPECT_EQ(JsonWriter::escape("a\tb"), "a\\tb");
    EXPECT_EQ(JsonWriter::escape("a\rb"), "a\\rb");
    EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
    EXPECT_EQ(JsonWriter::escape("a\bb"), "a\\bb");
    EXPECT_EQ(JsonWriter::escape("a\fb"), "a\\fb");
    EXPECT_EQ(JsonWriter::escape(std::string("a\x01", 2) + "b"),
              "a\\u0001b");
    EXPECT_EQ(JsonWriter::escape(std::string("x\x1f", 2)), "x\\u001f");
    EXPECT_EQ(JsonWriter::escape("q\"w\\e"), "q\\\"w\\\\e");
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
}

TEST(JsonWriterTest, CommasAndNesting)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", std::uint64_t(1));
    w.field("b", "two");
    w.key("c").beginArray();
    w.value(std::uint64_t(3)).value(4.5).value(true);
    w.beginObject().field("d", std::uint64_t(6)).endObject();
    w.endArray();
    w.key("e").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":\"two\",\"c\":[3,4.5,true,{\"d\":6}],"
              "\"e\":{}}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeZero)
{
    JsonWriter w;
    w.beginArray();
    w.value(0.0 / 0.0);
    w.endArray();
    EXPECT_EQ(w.str(), "[0]");
}

// ----------------------------------------------------------- Histogram fixes

TEST(HistogramPercentileTest, BoundaryPercentiles)
{
    Histogram h(10, 8);  // buckets [0,10) [10,20) ... plus overflow
    // Three samples in bucket 2, one in bucket 5.
    h.record(25);
    h.record(26);
    h.record(27);
    h.record(55);
    // p=0 must land on the first *non-empty* bucket, not return the
    // midpoint of an empty bucket 0 (the pre-fix behavior).
    EXPECT_DOUBLE_EQ(h.percentile(0), 25.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 25.0);   // 2nd of 4 samples
    EXPECT_DOUBLE_EQ(h.percentile(75), 25.0);   // 3rd of 4 samples
    EXPECT_DOUBLE_EQ(h.percentile(100), 55.0);  // 4th sample, bucket 5
}

TEST(HistogramPercentileTest, OverflowBucketReportsMax)
{
    Histogram h(10, 3);  // overflow bucket covers values >= 30
    h.record(5);
    h.record(1000);
    // The overflow bucket has no midpoint; the recorded max is the only
    // honest bound.
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
}

TEST(HistogramPercentileTest, EmptyAndClamped)
{
    Histogram h(10, 4);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // no samples
    h.record(12);
    EXPECT_DOUBLE_EQ(h.percentile(-5), 15.0);   // clamps to p=0
    EXPECT_DOUBLE_EQ(h.percentile(200), 15.0);  // clamps to p=100
}

// ------------------------------------------------------------- StatsRegistry

TEST(StatsRegistryTest, OwnedHandles)
{
    StatsRegistry reg;
    Counter &hits = reg.counter("vm.tlb.l1.base.hits");
    Gauge &occupancy = reg.gauge("mm.occupancy");
    ++hits;
    hits += 4;
    hits.add(5);
    occupancy.set(0.75);

    const MetricsSnapshot snap = reg.snapshot(123);
    EXPECT_EQ(snap.atCycle, 123u);
    EXPECT_EQ(snap.u64("vm.tlb.l1.base.hits"), 10u);
    EXPECT_DOUBLE_EQ(snap.real("mm.occupancy"), 0.75);
}

TEST(StatsRegistryTest, BindsLegacyStructFields)
{
    struct LegacyStats
    {
        std::uint64_t walks = 0;
        std::uint64_t faults = 0;
    } stats;

    StatsRegistry reg;
    reg.bindCounter("vm.walker.walks", stats.walks);
    reg.bindCounter("vm.walker.faults", stats.faults);
    stats.walks = 42;
    stats.faults = 7;

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.u64("vm.walker.walks"), 42u);
    EXPECT_EQ(snap.u64("vm.walker.faults"), 7u);
    // Bindings are live: later snapshots see later values.
    stats.walks = 100;
    EXPECT_EQ(reg.snapshot().u64("vm.walker.walks"), 100u);
}

TEST(StatsRegistryTest, ComputedCountersAndGauges)
{
    StatsRegistry reg;
    std::uint64_t a = 3, b = 4;
    reg.bindCounterFn("sum", [&] { return a + b; });
    reg.bindGaugeFn("ratio", [&] { return double(a) / double(b); });
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.u64("sum"), 7u);
    EXPECT_DOUBLE_EQ(snap.real("ratio"), 0.75);
}

TEST(StatsRegistryTest, HistogramExplodesIntoScalars)
{
    StatsRegistry reg;
    Histogram &h = reg.histogram("dram.latency", 10, 8);
    h.record(25);
    h.record(25);

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.u64("dram.latency.samples"), 2u);
    EXPECT_DOUBLE_EQ(snap.real("dram.latency.mean"), 25.0);
    EXPECT_EQ(snap.u64("dram.latency.max"), 25u);
    EXPECT_DOUBLE_EQ(snap.real("dram.latency.p50"), 25.0);
    EXPECT_DOUBLE_EQ(snap.real("dram.latency.p95"), 25.0);
}

TEST(StatsRegistryTest, LabeledProviderFamilies)
{
    StatsRegistry reg;
    reg.addProvider([](StatsRegistry::Sink &sink) {
        // Deliberately emit out of order; snapshots sort by key.
        sink.counter("vm.translation.app.requests", {{"app", "1"}}, 20);
        sink.counter("vm.translation.app.requests", {{"app", "0"}}, 10);
    });
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.u64("vm.translation.app.requests{app=0}"), 10u);
    EXPECT_EQ(snap.u64("vm.translation.app.requests{app=1}"), 20u);
    ASSERT_EQ(snap.values.size(), 2u);
    EXPECT_EQ(snap.values[0].key(), "vm.translation.app.requests{app=0}");
}

TEST(StatsRegistryTest, SnapshotIsSortedAndLookupsMissGracefully)
{
    StatsRegistry reg;
    reg.counter("z.last");
    reg.counter("a.first");
    reg.counter("m.middle");
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.values.size(), 3u);
    EXPECT_EQ(snap.values[0].path, "a.first");
    EXPECT_EQ(snap.values[2].path, "z.last");
    EXPECT_FALSE(snap.has("no.such.metric"));
    EXPECT_EQ(snap.u64("no.such.metric"), 0u);
    EXPECT_DOUBLE_EQ(snap.real("no.such.metric"), 0.0);
    EXPECT_EQ(snap.find("no.such.metric"), nullptr);
}

TEST(StatsRegistryTest, SnapshotJsonIsFlatAndStable)
{
    StatsRegistry reg;
    Counter &c = reg.counter("b.count");
    ++c;
    reg.bindGaugeFn("a.rate", [] { return 0.5; });
    const std::string json = reg.snapshot().toJson();
    EXPECT_EQ(json, "{\"a.rate\":0.5,\"b.count\":1}");
}

TEST(StatsRegistryTest, HandleReferencesSurviveGrowth)
{
    StatsRegistry reg;
    Counter &first = reg.counter("first");
    for (int i = 0; i < 100; ++i)
        reg.counter("c" + std::to_string(i));
    ++first;  // must not be a dangling reference after 100 more registrations
    EXPECT_EQ(reg.snapshot().u64("first"), 1u);
    EXPECT_EQ(reg.entryCount(), 101u);
}

}  // namespace
}  // namespace mosaic
