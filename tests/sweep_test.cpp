/** @file Tests of the parallel sweep runner: pool mechanics, ordering,
 *  stats, the determinism guarantee (serial == parallel), and a
 *  ThreadSanitizer-friendly concurrent-simulation stress test. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "runner/sweep.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

Workload
smallWorkload(const std::string &app, unsigned copies)
{
    Workload w = scaledWorkload(homogeneousWorkload(app, copies), 0.05);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 200;
    return w;
}

SimConfig
fast(SimConfig c)
{
    c.gpu.sm.warpsPerSm = 8;
    return c.withIoCompression(16.0);
}

/** Field-by-field equality of the results the benches consume. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.pageWalks, b.pageWalks);
    EXPECT_EQ(a.farFaults, b.farFaults);
    EXPECT_EQ(a.pagedBytes, b.pagedBytes);
    EXPECT_EQ(a.allocatedBytes, b.allocatedBytes);
    EXPECT_DOUBLE_EQ(a.l1TlbHitRate, b.l1TlbHitRate);
    EXPECT_DOUBLE_EQ(a.l2TlbHitRate, b.l2TlbHitRate);
    EXPECT_DOUBLE_EQ(a.l1CacheHitRate, b.l1CacheHitRate);
    EXPECT_DOUBLE_EQ(a.l2CacheHitRate, b.l2CacheHitRate);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].instructions, b.apps[i].instructions);
        EXPECT_EQ(a.apps[i].finishCycle, b.apps[i].finishCycle);
        EXPECT_DOUBLE_EQ(a.apps[i].ipc, b.apps[i].ipc);
        EXPECT_DOUBLE_EQ(a.apps[i].l1TlbHitRate, b.apps[i].l1TlbHitRate);
        EXPECT_EQ(a.apps[i].pageWalks, b.apps[i].pageWalks);
    }
}

TEST(SweepRunnerTest, ResultsArriveInSubmissionOrder)
{
    SweepRunner pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([i] {
            // Early jobs sleep longest so completion order inverts
            // submission order; futures must still line up.
            std::this_thread::sleep_for(
                std::chrono::microseconds((64 - i) * 20));
            return i;
        }));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(SweepRunnerTest, WaitDrainsAllJobs)
{
    SweepRunner pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 20; ++i)
        pool.submit([&done] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 20);
    EXPECT_EQ(pool.jobsSubmitted(), 20u);
    EXPECT_EQ(pool.jobsCompleted(), 20u);
}

TEST(SweepRunnerTest, DestructorDrainsPendingJobs)
{
    std::atomic<int> done{0};
    {
        SweepRunner pool(2);
        for (int i = 0; i < 16; ++i)
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                ++done;
            });
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(SweepRunnerTest, ExceptionsPropagateThroughFutures)
{
    SweepRunner pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(SweepRunnerTest, StatsRecordPerJobWallClockInSubmissionOrder)
{
    SweepRunner pool(2);
    pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); },
        "first");
    pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); },
        "second");
    const SweepStats stats = pool.stats();
    EXPECT_EQ(stats.threads, 2u);
    ASSERT_EQ(stats.jobs, 2u);
    ASSERT_EQ(stats.perJob.size(), 2u);
    EXPECT_EQ(stats.perJob[0].label, "first");
    EXPECT_EQ(stats.perJob[1].label, "second");
    EXPECT_GT(stats.perJob[0].wallSeconds, 0.0);
    EXPECT_GT(stats.perJob[1].wallSeconds, 0.0);
    EXPECT_GT(stats.totalWallSeconds, 0.0);
    EXPECT_NEAR(stats.sumJobSeconds,
                stats.perJob[0].wallSeconds + stats.perJob[1].wallSeconds,
                1e-12);
}

TEST(SweepRunnerTest, JobsFromEnvParsesAndFallsBack)
{
    ::setenv("MOSAIC_BENCH_JOBS", "5", 1);
    EXPECT_EQ(SweepRunner::jobsFromEnv(), 5u);
    ::setenv("MOSAIC_BENCH_JOBS", "not-a-number", 1);
    EXPECT_GE(SweepRunner::jobsFromEnv(), 1u);
    ::unsetenv("MOSAIC_BENCH_JOBS");
    EXPECT_GE(SweepRunner::jobsFromEnv(), 1u);
}

TEST(SweepRunnerTest, MapOrderedPreservesItemOrder)
{
    SweepRunner pool(4);
    const std::vector<int> items = {5, 3, 8, 1, 9, 2};
    const auto doubled =
        mapOrdered(pool, items, [](const int &x) { return x * 2; });
    ASSERT_EQ(doubled.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(doubled[i], items[i] * 2);
}

TEST(SweepRunnerTest, SweepJsonLineIsWellFormed)
{
    SweepRunner pool(2);
    pool.submit([] { return 1; }, "only-job");
    const std::string path = ::testing::TempDir() + "sweep_test.json";
    std::remove(path.c_str());
    appendSweepJson(pool, "sweep_test_bench", path);
    appendSweepJson(pool, "sweep_test_bench", path);  // appends

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_NE(line.find("\"bench\":\"sweep_test_bench\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"label\":\"only-job\""), std::string::npos);
        EXPECT_NE(line.find("\"totalWallSeconds\":"), std::string::npos);
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    EXPECT_EQ(lines, 2);
    std::remove(path.c_str());
}

/**
 * The determinism guarantee behind byte-identical bench tables: the
 * same (workload, config, seed) produces the same SimResult whether it
 * runs on the calling thread or inside a 4-thread sweep alongside other
 * simulations.
 */
TEST(SweepDeterminismTest, SerialAndParallelRunsAgree)
{
    const Workload w = smallWorkload("HISTO", 2);
    const SimConfig base = fast(SimConfig::baseline());
    const SimConfig mosaic = fast(SimConfig::mosaicDefault());

    const SimResult serial_base = runSimulation(w, base);
    const SimResult serial_mosaic = runSimulation(w, mosaic);

    SweepRunner pool(4);
    auto f_base1 = pool.submitSimulation(w, base);
    auto f_mosaic = pool.submitSimulation(w, mosaic);
    auto f_base2 = pool.submitSimulation(w, base);

    expectSameResult(serial_base, f_base1.get());
    expectSameResult(serial_mosaic, f_mosaic.get());
    expectSameResult(serial_base, f_base2.get());
}

/**
 * ThreadSanitizer-friendly stress: 8 simulations in flight at once
 * across different managers and seeds, each duplicated so the results
 * can be cross-checked pairwise. Any shared mutable state inside
 * runSimulation shows up here as a TSan report (CI runs this under
 * -fsanitize=thread) or as a result mismatch.
 */
TEST(SweepStressTest, EightConcurrentSimulationsAreIndependent)
{
    const char *names[] = {"HISTO", "CONS", "TRD", "SCAN"};
    std::vector<Workload> workloads;
    std::vector<SimConfig> configs;
    for (int i = 0; i < 8; ++i) {
        workloads.push_back(smallWorkload(names[i % 4], 1 + (i % 2)));
        SimConfig c = fast((i % 2) != 0 ? SimConfig::mosaicDefault()
                                        : SimConfig::baseline());
        c.seed = static_cast<std::uint64_t>(i + 1);
        configs.push_back(c);
    }

    SweepRunner pool(8);
    std::vector<std::future<SimResult>> first, second;
    for (int i = 0; i < 8; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        first.push_back(pool.submitSimulation(workloads[idx], configs[idx]));
        second.push_back(
            pool.submitSimulation(workloads[idx], configs[idx]));
    }
    for (int i = 0; i < 8; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        SCOPED_TRACE("simulation " + std::to_string(i));
        expectSameResult(first[idx].get(), second[idx].get());
    }
}

/** The aloneIpcs memo is shared across sweep jobs; hammer it. */
TEST(SweepStressTest, ConcurrentAloneIpcsAgree)
{
    const Workload w = smallWorkload("BP", 2);
    const SimConfig cfg = fast(SimConfig::baseline());

    SweepRunner pool(4);
    std::vector<std::future<std::vector<double>>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(pool.submit([w, cfg] { return aloneIpcs(w, cfg); }));
    const std::vector<double> reference = aloneIpcs(w, cfg);
    ASSERT_EQ(reference.size(), 2u);
    for (auto &f : futures) {
        const std::vector<double> got = f.get();
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_DOUBLE_EQ(got[i], reference[i]);
    }
}

}  // namespace
}  // namespace mosaic
