/** @file Unit tests for the split base/large TLB. */

#include <gtest/gtest.h>

#include "vm/tlb.h"

namespace mosaic {
namespace {

TlbConfig
smallTlb()
{
    TlbConfig c;
    c.baseEntries = 4;
    c.baseWays = 0;  // fully associative
    c.largeEntries = 2;
    c.largeWays = 0;
    return c;
}

TEST(TlbTest, BaseAndLargeAreSeparateArrays)
{
    Tlb tlb(smallTlb());
    tlb.fillBase(0, 100);
    EXPECT_TRUE(tlb.lookupBase(0, 100));
    EXPECT_FALSE(tlb.lookupLarge(0, 100));
    tlb.fillLarge(0, 100);
    EXPECT_TRUE(tlb.lookupLarge(0, 100));
}

TEST(TlbTest, EntriesAreTaggedByAddressSpace)
{
    Tlb tlb(smallTlb());
    tlb.fillBase(1, 7);
    EXPECT_TRUE(tlb.lookupBase(1, 7));
    EXPECT_FALSE(tlb.lookupBase(2, 7));
}

TEST(TlbTest, LruEvictionWithinBaseArray)
{
    Tlb tlb(smallTlb());
    for (std::uint64_t v = 0; v < 4; ++v)
        tlb.fillBase(0, v);
    tlb.lookupBase(0, 0);  // make vpn 0 MRU; vpn 1 is LRU
    tlb.fillBase(0, 99);
    EXPECT_TRUE(tlb.lookupBase(0, 0));
    EXPECT_FALSE(tlb.lookupBase(0, 1));
}

TEST(TlbTest, FlushLargeRemovesOnlyThatEntry)
{
    Tlb tlb(smallTlb());
    tlb.fillLarge(0, 5);
    tlb.fillLarge(0, 6);
    EXPECT_TRUE(tlb.flushLarge(0, 5));
    EXPECT_FALSE(tlb.lookupLarge(0, 5));
    EXPECT_TRUE(tlb.lookupLarge(0, 6));
    EXPECT_FALSE(tlb.flushLarge(0, 5));  // already gone
}

TEST(TlbTest, FlushBaseRemovesEntry)
{
    Tlb tlb(smallTlb());
    tlb.fillBase(0, 9);
    EXPECT_TRUE(tlb.flushBase(0, 9));
    EXPECT_FALSE(tlb.lookupBase(0, 9));
}

TEST(TlbTest, FlushAppRemovesOnlyThatAppsEntries)
{
    Tlb tlb(smallTlb());
    tlb.fillBase(1, 10);
    tlb.fillBase(2, 11);
    tlb.fillLarge(1, 12);
    tlb.flushApp(1);
    EXPECT_FALSE(tlb.lookupBase(1, 10));
    EXPECT_FALSE(tlb.lookupLarge(1, 12));
    EXPECT_TRUE(tlb.lookupBase(2, 11));
}

TEST(TlbTest, StatsCountHitsAndAccesses)
{
    Tlb tlb(smallTlb());
    tlb.fillBase(0, 1);
    tlb.lookupBase(0, 1);   // hit
    tlb.lookupBase(0, 2);   // miss
    tlb.lookupLarge(0, 3);  // miss
    EXPECT_EQ(tlb.stats().baseAccesses, 2u);
    EXPECT_EQ(tlb.stats().baseHits, 1u);
    EXPECT_EQ(tlb.stats().largeAccesses, 1u);
    EXPECT_EQ(tlb.stats().largeHits, 0u);
    EXPECT_EQ(tlb.stats().accesses(), 3u);
    EXPECT_EQ(tlb.stats().hits(), 1u);
}

TEST(TlbTest, FillIsIdempotent)
{
    Tlb tlb(smallTlb());
    tlb.fillBase(0, 1);
    tlb.fillBase(0, 1);  // must not assert or duplicate
    EXPECT_EQ(tlb.baseOccupancy(), 1u);
}

TEST(TlbTest, SetAssociativeGeometryRespected)
{
    TlbConfig c;
    c.baseEntries = 8;
    c.baseWays = 2;  // 4 sets x 2 ways
    c.largeEntries = 2;
    Tlb tlb(c);
    // vpns 0, 4, 8 all map to set 0; third insert evicts.
    tlb.fillBase(0, 0);
    tlb.fillBase(0, 4);
    tlb.fillBase(0, 8);
    int present = 0;
    present += tlb.lookupBase(0, 0) ? 1 : 0;
    present += tlb.lookupBase(0, 4) ? 1 : 0;
    present += tlb.lookupBase(0, 8) ? 1 : 0;
    EXPECT_EQ(present, 2);
}

TlbConfig
tridentTlb()
{
    TlbConfig c = smallTlb();
    c.numSizeLevels = 3;  // one intermediate array
    c.midEntries = 4;
    c.midWays = 0;
    return c;
}

TlbConfig
coltTlb()
{
    TlbConfig c = smallTlb();
    c.coltEnabled = true;
    c.coltEntries = 4;
    c.coltWays = 0;
    c.coltSpanPagesLog2 = 2;  // 4-page groups
    return c;
}

TEST(TlbTest, DefaultPairHasNoMidOrColtArrays)
{
    Tlb tlb(smallTlb());
    EXPECT_EQ(tlb.numMidLevels(), 0u);
    EXPECT_FALSE(tlb.hasColt());
    EXPECT_EQ(tlb.coltOccupancy(), 0u);
}

TEST(TlbTest, MidArrayIsSeparateFromBaseAndLarge)
{
    Tlb tlb(tridentTlb());
    ASSERT_EQ(tlb.numMidLevels(), 1u);
    tlb.fillMid(0, 0, 42);
    EXPECT_TRUE(tlb.lookupMid(0, 0, 42));
    EXPECT_FALSE(tlb.lookupBase(0, 42));
    EXPECT_FALSE(tlb.lookupLarge(0, 42));
    EXPECT_EQ(tlb.midOccupancy(0), 1u);
}

TEST(TlbTest, FlushMidRemovesOnlyThatEntry)
{
    Tlb tlb(tridentTlb());
    tlb.fillMid(0, 0, 5);
    tlb.fillMid(0, 0, 6);
    EXPECT_TRUE(tlb.flushMid(0, 0, 5));
    EXPECT_FALSE(tlb.containsMid(0, 0, 5));
    EXPECT_TRUE(tlb.containsMid(0, 0, 6));
    EXPECT_FALSE(tlb.flushMid(0, 0, 5));  // already gone
}

TEST(TlbTest, MidStatsCountPerLevel)
{
    Tlb tlb(tridentTlb());
    tlb.fillMid(0, 0, 1);
    tlb.lookupMid(0, 0, 1);  // hit
    tlb.lookupMid(0, 0, 2);  // miss
    EXPECT_EQ(tlb.stats().midAccesses[0], 2u);
    EXPECT_EQ(tlb.stats().midHits[0], 1u);
}

TEST(TlbTest, ColtEntryCoversItsWholeGroup)
{
    Tlb tlb(coltTlb());
    ASSERT_TRUE(tlb.hasColt());
    // Filling any page of the 4-page group installs the group entry;
    // every page of the group then hits, the next group misses.
    tlb.fillColt(0, 5);  // group 1 = base vpns 4..7
    EXPECT_TRUE(tlb.lookupColt(0, 4));
    EXPECT_TRUE(tlb.lookupColt(0, 7));
    EXPECT_FALSE(tlb.lookupColt(0, 8));
    EXPECT_EQ(tlb.coltOccupancy(), 1u);
    EXPECT_EQ(tlb.stats().coltFills, 1u);
}

TEST(TlbTest, ColtShootdownIsExactToTheGroup)
{
    Tlb tlb(coltTlb());
    tlb.fillColt(0, 0);   // group 0
    tlb.fillColt(0, 4);   // group 1
    // Invalidating via any page of group 0 removes exactly that entry.
    EXPECT_TRUE(tlb.flushColtGroup(0, 3));
    EXPECT_FALSE(tlb.containsColtGroup(0, 0));
    EXPECT_TRUE(tlb.containsColtGroup(0, 4));
    EXPECT_EQ(tlb.stats().coltShootdowns, 1u);
    EXPECT_FALSE(tlb.flushColtGroup(0, 3));  // already gone
}

TEST(TlbTest, ColtEntriesAreTaggedByAddressSpace)
{
    Tlb tlb(coltTlb());
    tlb.fillColt(1, 8);
    EXPECT_TRUE(tlb.containsColtGroup(1, 8));
    EXPECT_FALSE(tlb.containsColtGroup(2, 8));
}

/** Property sweep over TLB sizes used in the Fig. 14/15 sensitivity. */
class TlbSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TlbSizeTest, OccupancyBoundedByCapacity)
{
    TlbConfig c;
    c.baseEntries = GetParam();
    c.largeEntries = 4;
    Tlb tlb(c);
    for (std::uint64_t v = 0; v < 4 * GetParam(); ++v)
        tlb.fillBase(0, v);
    EXPECT_EQ(tlb.baseOccupancy(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TlbSizeTest,
                         ::testing::Values<std::size_t>(8, 16, 32, 64, 128,
                                                        256, 512));

}  // namespace
}  // namespace mosaic
