/**
 * @file
 * Sharded-engine tracing determinism tests (DESIGN.md §9 + §12).
 *
 * Under the sharded engine each SM lane and the hub lane record into
 * their own ring; the export merges by canonical (ts, lane, record
 * order). The merged document must therefore be byte-identical for
 * every worker count N >= 1, just like the metrics snapshot in
 * shard_test.cpp -- any event recorded with a worker-dependent value
 * (a wall-clock figure, a thread id, an unsorted merge) diverges here.
 *
 * Also covered: tracing stays observation-only when sharded (the
 * metrics snapshot is byte-identical with tracing on and off), the
 * engine self-profiler surfaces engine.shard.* metrics exactly when
 * the sharded engine runs, the merged export passes trace_check's
 * lane/track validation, and the EngineShardProfile numbers are sane.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "runner/json_report.h"
#include "runner/simulation.h"
#include "trace/trace_export.h"
#include "trace/trace_validate.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

constexpr unsigned kSms = 8;

/** Small traced cell: two-app het mix over a reduced SM count so the
 *  merged export stays cheap across the worker-count sweep. */
Workload
tracedWorkload()
{
    Workload w = scaledWorkload(heterogeneousWorkload(2, 42), 0.04);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 200;
    return w;
}

SimConfig
tracedConfig(SimConfig c)
{
    c.gpu.numSms = kSms;
    c.gpu.sm.warpsPerSm = 4;
    return c.withIoCompression(16.0).withTracing();
}

SimResult
runTraced(const SimConfig &base, unsigned shards)
{
    return runSimulation(tracedWorkload(), base.withEngineShards(shards));
}

std::string
traceAt(const SimConfig &base, unsigned shards)
{
    const SimResult r = runTraced(base, shards);
    return r.trace != nullptr ? chromeTraceJson(*r.trace) : std::string();
}

void
expectTraceWorkerCountInvariant(const SimConfig &base)
{
    const std::string reference = traceAt(base, 1);
    ASSERT_FALSE(reference.empty());
    for (const unsigned n : {2u, 4u, 8u}) {
        const std::string doc = traceAt(base, n);
        if (doc == reference)
            continue;
        std::size_t at = 0;
        while (at < doc.size() && at < reference.size() &&
               doc[at] == reference[at])
            ++at;
        const std::size_t from = at < 80 ? 0 : at - 80;
        FAIL() << base.label << " trace diverges at " << n
               << " workers (byte " << at << ")\n  N=1: ..."
               << reference.substr(from, 160) << "\n  N=" << n << ": ..."
               << doc.substr(from, 160);
    }
}

TEST(TraceShardTest, MosaicTraceIsWorkerCountInvariant)
{
    expectTraceWorkerCountInvariant(tracedConfig(SimConfig::mosaicDefault()));
}

TEST(TraceShardTest, GpuMmuTraceIsWorkerCountInvariant)
{
    expectTraceWorkerCountInvariant(tracedConfig(SimConfig::baseline()));
}

TEST(TraceShardTest, LargeOnlyTraceIsWorkerCountInvariant)
{
    expectTraceWorkerCountInvariant(tracedConfig(SimConfig::largeOnly()));
}

/** Arming per-lane rings must not change what the simulation computes:
 *  the metrics snapshot is byte-identical with tracing on and off. */
TEST(TraceShardTest, ShardedTracingIsObservationOnly)
{
    const SimConfig on = tracedConfig(SimConfig::mosaicDefault());
    SimConfig off = on;
    off.trace.enabled = false;
    const SimResult withTrace = runSimulation(tracedWorkload(),
                                              on.withEngineShards(2));
    const SimResult without = runSimulation(tracedWorkload(),
                                            off.withEngineShards(2));
    EXPECT_EQ(metricsToJson(withTrace, "mosaic"),
              metricsToJson(without, "mosaic"));
    EXPECT_NE(withTrace.trace, nullptr);
    EXPECT_EQ(without.trace, nullptr);
}

/** The merged export passes the full replay validation, including the
 *  per-lane tid/thread_name checks, with one lane per SM plus the hub
 *  plus one ring per DRAM-channel sub-lane (hub sub-lanes). */
TEST(TraceShardTest, ShardedTraceValidatesWithPerLaneTracks)
{
    const SimConfig base = tracedConfig(SimConfig::mosaicDefault());
    const std::string json = traceAt(base, 4);
    const TraceCheckResult check = validateChromeTraceText(json);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.lanes, kSms + 1 + base.dram.channels);
    EXPECT_GT(check.events, 0u);
    // Engine self-profiler counter tracks sample under sharding.
    EXPECT_GT(check.counterSamples, 0u);
    EXPECT_NE(json.find("engine.shard.hub.windowEvents"),
              std::string::npos);
    EXPECT_NE(json.find("engine.shard.lane0.queueDepth"),
              std::string::npos);
    // Sub-lane rings export as their own named threads with their own
    // counter tracks.
    EXPECT_NE(json.find("hub-sub0"), std::string::npos);
    EXPECT_NE(json.find("engine.shard.sub0.windowEvents"),
              std::string::npos);
}

/** engine.shard.* metrics exist exactly when the sharded engine runs,
 *  and exclude anything worker-count dependent (shard_test proves the
 *  N-invariance; here: presence, absence, and shape). */
TEST(TraceShardTest, EngineShardMetricsGateOnShardedEngine)
{
    const SimConfig base = tracedConfig(SimConfig::mosaicDefault());
    const SimResult sharded = runTraced(base, 2);
    const SimResult serial = runTraced(base, 0);
    const std::string shardedJson = metricsToJson(sharded, "mosaic");
    const std::string serialJson = metricsToJson(serial, "mosaic");
    EXPECT_NE(shardedJson.find("engine.shard.epochs"), std::string::npos);
    EXPECT_NE(shardedJson.find("engine.shard.hub.occupancy"),
              std::string::npos);
    EXPECT_NE(shardedJson.find("engine.shard.lane.events"),
              std::string::npos);
    EXPECT_EQ(serialJson.find("engine.shard"), std::string::npos);
    // Wall-clock figures are host-dependent and must stay out of the
    // deterministic snapshot.
    EXPECT_EQ(shardedJson.find("barrierWait"), std::string::npos);
    EXPECT_EQ(shardedJson.find("workerUtilization"), std::string::npos);
}

/** The profiler answers "is the hub the bottleneck?" with sane numbers. */
TEST(TraceShardTest, EngineShardProfileIsSane)
{
    const SimResult r = runTraced(tracedConfig(SimConfig::mosaicDefault()),
                                  /*shards=*/2);
    const EngineShardProfile &p = r.engineShard;
    EXPECT_EQ(p.lanes, kSms);
    EXPECT_EQ(p.workers, 2u);
    EXPECT_GT(p.epochs, 0u);
    EXPECT_GT(p.hubEvents, 0u);
    EXPECT_GE(p.hubOccupancy, 0.0);
    EXPECT_LE(p.hubOccupancy, 1.0);
    EXPECT_GE(p.workerUtilization, 0.0);
    EXPECT_LE(p.workerUtilization, 1.0);
    EXPECT_GE(p.barrierWaitShare, 0.0);
    EXPECT_LE(p.barrierWaitShare, 1.0);
    ASSERT_EQ(p.laneEvents.size(), kSms);
    ASSERT_EQ(p.workerBusySec.size(), 2u);  // coordinator is worker 0
    std::uint64_t laneTotal = 0;
    for (const std::uint64_t e : p.laneEvents)
        laneTotal += e;
    EXPECT_GT(laneTotal, 0u);
    // Simulated occupancy + wall-clock phase times both accumulated.
    EXPECT_GT(p.hubBusyWindows, 0u);
    EXPECT_GT(p.wallSmPhaseSec + p.wallHubSec + p.wallExchangeSec, 0.0);
    // A serial run reports a default profile.
    const SimResult serial =
        runTraced(tracedConfig(SimConfig::mosaicDefault()), 0);
    EXPECT_EQ(serial.engineShard.epochs, 0u);
    EXPECT_EQ(serial.engineShard.workers, 0u);
}

}  // namespace
}  // namespace mosaic
