/** @file Unit tests for trace-driven warp streams and JSON reporting. */

#include <gtest/gtest.h>

#include <sstream>

#include "runner/json_report.h"
#include "workload/trace_stream.h"

namespace mosaic {
namespace {

TEST(TraceFileTest, ParsesWarpsComputeLoadsStores)
{
    std::istringstream in(
        "# a tiny trace\n"
        "W 0\n"
        "C 5\n"
        "L 1000 1080\n"
        "S 2000\n"
        "W 2\n"
        "C 1\n");
    const auto trace = TraceFile::parse(in);
    ASSERT_EQ(trace->numWarps(), 3u);
    EXPECT_EQ(trace->warp(0).size(), 3u);
    EXPECT_EQ(trace->warp(1).size(), 0u);
    EXPECT_EQ(trace->warp(2).size(), 1u);
    EXPECT_EQ(trace->totalInstructions(), 4u);

    const WarpInstr &compute = trace->warp(0)[0];
    EXPECT_FALSE(compute.isMemory);
    EXPECT_EQ(compute.computeLatency, 5u);

    const WarpInstr &load = trace->warp(0)[1];
    EXPECT_TRUE(load.isMemory);
    EXPECT_FALSE(load.isStore);
    ASSERT_EQ(load.numLines, 2u);
    EXPECT_EQ(load.lineAddrs[0], 0x1000u);
    EXPECT_EQ(load.lineAddrs[1], 0x1080u);

    const WarpInstr &store = trace->warp(0)[2];
    EXPECT_TRUE(store.isStore);
    EXPECT_EQ(store.lineAddrs[0], 0x2000u);
}

TEST(TraceFileTest, CommentsAndBlankLinesIgnored)
{
    std::istringstream in("\n# only comments\nW 0\n# mid\nC 1\n\n");
    const auto trace = TraceFile::parse(in);
    EXPECT_EQ(trace->totalInstructions(), 1u);
}

TEST(TraceFileDeathTest, InstructionBeforeWarpIsFatal)
{
    std::istringstream in("C 1\n");
    EXPECT_DEATH((void)TraceFile::parse(in), "before any W");
}

TEST(TraceFileDeathTest, UnknownOpIsFatal)
{
    std::istringstream in("W 0\nX 1\n");
    EXPECT_DEATH((void)TraceFile::parse(in), "unknown op");
}

TEST(TraceFileDeathTest, EmptyMemoryInstructionIsFatal)
{
    std::istringstream in("W 0\nL\n");
    EXPECT_DEATH((void)TraceFile::parse(in), "no addresses");
}

TEST(TraceWarpStreamTest, ReplaysInOrderThenEnds)
{
    std::istringstream in("W 0\nC 2\nL 1000\nC 3\n");
    const auto trace = TraceFile::parse(in);
    TraceWarpStream stream(trace, 0);
    WarpInstr i;
    ASSERT_TRUE(stream.next(i));
    EXPECT_EQ(i.computeLatency, 2u);
    ASSERT_TRUE(stream.next(i));
    EXPECT_TRUE(i.isMemory);
    ASSERT_TRUE(stream.next(i));
    EXPECT_EQ(i.computeLatency, 3u);
    EXPECT_FALSE(stream.next(i));
}

TEST(TraceWarpStreamTest, OutOfRangeWarpIsEmpty)
{
    std::istringstream in("W 0\nC 1\n");
    const auto trace = TraceFile::parse(in);
    TraceWarpStream stream(trace, 7);
    WarpInstr i;
    EXPECT_FALSE(stream.next(i));
}

TEST(JsonReportTest, EmitsWellFormedFields)
{
    SimResult r;
    r.configLabel = "Mosaic";
    r.workloadName = "HISTO-x2";
    r.totalCycles = 123;
    r.mm.coalesceOps = 7;
    AppResult app;
    app.name = "HISTO";
    app.smCount = 15;
    app.instructions = 1000;
    app.ipc = 0.5;
    r.apps.push_back(app);

    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"config\":\"Mosaic\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"HISTO-x2\""), std::string::npos);
    EXPECT_NE(json.find("\"totalCycles\":123"), std::string::npos);
    EXPECT_NE(json.find("\"coalesceOps\":7"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"HISTO\""), std::string::npos);
    // Balanced braces/brackets.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(JsonReportTest, EscapesSpecialCharacters)
{
    SimResult r;
    r.configLabel = "a\"b\\c";
    const std::string json = toJson(r);
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

}  // namespace
}  // namespace mosaic
