/** @file Tests of the event tracer: ring buffer semantics, category
 *  gating, export/replay round trips, trace determinism (serial and
 *  under the parallel SweepRunner), the observation-only guarantee, and
 *  the trace_check invariant validator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runner/json_report.h"
#include "runner/simulation.h"
#include "runner/sweep.h"
#include "trace/trace_export.h"
#include "trace/trace_mux.h"
#include "trace/trace_reader.h"
#include "trace/trace_validate.h"
#include "trace/tracer.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

TraceConfig
enabledConfig(std::size_t capacity = 1u << 12,
              std::uint32_t categories = kTraceAll)
{
    TraceConfig c;
    c.enabled = true;
    c.categories = categories;
    c.ringCapacity = capacity;
    return c;
}

std::vector<const TraceEvent *>
eventsOf(const Tracer &t)
{
    std::vector<const TraceEvent *> out;
    t.forEach([&out](const TraceEvent &e) { out.push_back(&e); });
    return out;
}

TEST(TracerTest, DisabledTracerRecordsNothing)
{
    TraceConfig config;  // enabled = false
    config.categories = kTraceAll;
    Tracer t(config);
    EXPECT_EQ(t.mask(), 0u);
    EXPECT_FALSE(t.on(kTraceMm));
    t.instant(kTraceMm, TraceTrack::Mm, "x", 1);
    t.counter("c", 2, 3);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
}

TEST(TracerTest, CategoryMaskGatesPerCategory)
{
    Tracer t(enabledConfig(64, kTraceMm | kTraceCounter));
    EXPECT_TRUE(t.on(kTraceMm));
    EXPECT_TRUE(t.on(kTraceCounter));
    EXPECT_FALSE(t.on(kTraceVm));
    EXPECT_FALSE(t.on(kTraceIo));
    t.instant(kTraceVm, TraceTrack::Vm, "dropped", 1);
    t.instant(kTraceMm, TraceTrack::Mm, "kept", 2);
    t.counter("kept.counter", 3, 7);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_STREQ(eventsOf(t)[0]->name, "kept");
    EXPECT_STREQ(eventsOf(t)[1]->name, "kept.counter");
}

TEST(TracerTest, RingWrapsDroppingOldest)
{
    Tracer t(enabledConfig(8));
    for (Cycles ts = 0; ts < 20; ++ts)
        t.instant(kTraceMm, TraceTrack::Mm, "e", ts, {"i", ts});
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.dropped(), 12u);
    EXPECT_EQ(t.recorded(), 20u);
    // Survivors are the newest 8, visited oldest-first.
    const auto events = eventsOf(t);
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i]->ts, 12 + i);
}

TEST(TracerTest, NextIdIsDeterministic)
{
    Tracer a(enabledConfig());
    Tracer b(enabledConfig());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(a.nextId(), b.nextId());
}

TEST(TracerTest, DropAccountingChargesOverwrittenCategory)
{
    // Four Mm events fill the ring; two Vm pushes then overwrite the
    // two oldest *Mm* events -- the drop charge follows what was lost,
    // not what arrived.
    Tracer t(enabledConfig(4));
    for (Cycles ts = 0; ts < 4; ++ts)
        t.instant(kTraceMm, TraceTrack::Mm, "mm", ts);
    t.instant(kTraceVm, TraceTrack::Vm, "vm", 4);
    t.instant(kTraceVm, TraceTrack::Vm, "vm", 5);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.droppedInCategory(traceCategoryIndex(kTraceMm)), 2u);
    EXPECT_EQ(t.droppedInCategory(traceCategoryIndex(kTraceVm)), 0u);
    EXPECT_EQ(t.droppedInCategory(traceCategoryIndex(kTraceCounter)), 0u);
    // Two more wraps now consume the remaining Mm events, then Vm ones.
    for (Cycles ts = 6; ts < 10; ++ts)
        t.instant(kTraceIo, TraceTrack::Io, "io", ts);
    EXPECT_EQ(t.dropped(), 6u);
    EXPECT_EQ(t.droppedInCategory(traceCategoryIndex(kTraceMm)), 4u);
    EXPECT_EQ(t.droppedInCategory(traceCategoryIndex(kTraceVm)), 2u);
}

TEST(TracerTest, LaneIdTagNamespacesAsyncIds)
{
    // Tag 0 (the hub / serial ring) keeps the historical 1,2,3,...
    // sequence; tagged lanes put their tag at bit 40, below the
    // TraceIdSpace namespace field, so lanes never collide with each
    // other or with traceId()-derived ids.
    Tracer hub(enabledConfig());
    EXPECT_EQ(hub.nextId(), 1u);
    EXPECT_EQ(hub.nextId(), 2u);
    Tracer lane(enabledConfig(), /*idTag=*/3);
    const std::uint64_t id = lane.nextId();
    EXPECT_EQ(id, (3ull << 40) | 1u);
    EXPECT_NE(id, traceId(TraceIdSpace::Walk, 1));
}

TEST(TracerTest, TraceIdNamespacesNeverCollide)
{
    const auto walk = traceId(TraceIdSpace::Walk, 7);
    const auto frame = traceId(TraceIdSpace::Frame, 7);
    EXPECT_NE(walk, frame);
    // The value survives in the low bits.
    EXPECT_EQ(walk & ((1ull << 56) - 1), 7u);
    EXPECT_EQ(frame & ((1ull << 56) - 1), 7u);
}

TEST(TraceCategoryTest, ParseAcceptsAllForms)
{
    std::uint32_t mask = 0;
    EXPECT_TRUE(parseTraceCategories("all", &mask));
    EXPECT_EQ(mask, kTraceAll);
    EXPECT_TRUE(parseTraceCategories("0x6", &mask));
    EXPECT_EQ(mask, kTraceVm | kTraceMm);
    EXPECT_TRUE(parseTraceCategories("63", &mask));
    EXPECT_EQ(mask, kTraceAll);
    EXPECT_TRUE(parseTraceCategories("vm,mm,counter", &mask));
    EXPECT_EQ(mask, kTraceVm | kTraceMm | kTraceCounter);
    std::uint32_t untouched = 42;
    EXPECT_FALSE(parseTraceCategories("vm,bogus", &untouched));
    EXPECT_EQ(untouched, 42u);
    EXPECT_FALSE(parseTraceCategories("", &untouched));
}

TEST(TraceExportTest, RoundTripsThroughReader)
{
    Tracer t(enabledConfig(64));
    t.asyncBegin(kTraceMm, TraceTrack::Mm, "frame",
                 traceId(TraceIdSpace::Frame, 3), 10, {"app", 1});
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.coalesce",
                   traceId(TraceIdSpace::Frame, 3), 20, {"resident", 512});
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.splinter",
                   traceId(TraceIdSpace::Frame, 3), 30);
    t.asyncEnd(kTraceMm, TraceTrack::Mm, "frame",
               traceId(TraceIdSpace::Frame, 3), 40);
    t.counter("mm.coalesceOps", 50, 1);
    t.counter("mm.splinterOps", 50, 1);

    const std::string json = chromeTraceJson(t, "unit-test");
    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(json, root, &error)) << error;
    const JsonValue *events = root.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // 6 recorded + 2 x 7 metadata (process + track names).
    EXPECT_GT(events->array.size(), 6u);

    const TraceCheckResult check = validateChromeTrace(root);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.frameLifecycles, 1u);
    EXPECT_EQ(check.completeLifecycles, 1u);
    EXPECT_EQ(check.coalesces, 1u);
    EXPECT_EQ(check.splinters, 1u);
    EXPECT_EQ(check.counterSamples, 2u);
    EXPECT_EQ(check.openSpans, 0u);
}

TEST(TraceExportTest, NestedSpansOnOneIdValidate)
{
    // The walker nests walk.queued / walk.L* under the walk's own id
    // (nestable async semantics are positional); the validator must
    // treat per-id opens as a stack, not a single slot.
    Tracer t(enabledConfig(64));
    const auto id = traceId(TraceIdSpace::Walk, 1);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk", id, 10);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk.L1", id, 12);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk.L1", id, 20);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk.L2", id, 20);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk.L2", id, 30);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk", id, 31);
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t));
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.walkSpans, 1u);
    EXPECT_EQ(check.openSpans, 0u);
}

TEST(TraceExportTest, DroppedByCategoryIsExportedAndValidated)
{
    // Overflow a tiny ring with a known category mix; the exporter's
    // droppedByCategory object must account for every drop and the
    // validator must agree with otherData.dropped.
    Tracer t(enabledConfig(4, kTraceMm | kTraceIo));
    for (Cycles ts = 0; ts < 6; ++ts)
        t.instant(kTraceMm, TraceTrack::Mm, "mm", ts);
    for (Cycles ts = 6; ts < 9; ++ts)
        t.instant(kTraceIo, TraceTrack::Io, "io", ts);
    ASSERT_EQ(t.dropped(), 5u);

    const std::string json = chromeTraceJson(t);
    EXPECT_NE(json.find("droppedByCategory"), std::string::npos);
    const TraceCheckResult check = validateChromeTraceText(json);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.dropped, 5u);
    std::uint64_t sum = 0, mm = 0;
    for (const auto &[cat, n] : check.droppedByCategory) {
        sum += n;
        if (cat == "mm")
            mm = n;
    }
    EXPECT_EQ(sum, 5u);
    EXPECT_GE(mm, 4u);  // at least the first wrap consumed mm events
}

TEST(TraceExportTest, LosslessExportOmitsDroppedByCategory)
{
    // The zero-drop export (every golden trace) must not change shape.
    Tracer t(enabledConfig(64));
    t.instant(kTraceMm, TraceTrack::Mm, "e", 1);
    EXPECT_EQ(chromeTraceJson(t).find("droppedByCategory"),
              std::string::npos);
}

TEST(TraceMuxTest, SerialMuxMatchesSingleRingByteForByte)
{
    // A serial (smLanes == 0) mux is exactly one ring: every lane
    // accessor resolves to it and the export delegates to the
    // single-ring path, so the bytes cannot differ from a bare Tracer.
    const TraceConfig config = enabledConfig(64);
    Tracer bare(config);
    TraceMux mux(config, /*smLanes=*/0);
    EXPECT_FALSE(mux.sharded());
    EXPECT_EQ(mux.laneCount(), 1u);
    EXPECT_EQ(mux.lane(0), mux.hub());
    EXPECT_EQ(mux.lane(7), mux.hub());

    const auto record = [](Tracer &t) {
        t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk", t.nextId(), 5);
        t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk", 1, 9);
        t.instant(kTraceMm, TraceTrack::Mm, "x", 12);
        t.counter("c", 15, 3);
    };
    record(bare);
    record(*mux.lane(3));  // the single ring, via a lane accessor
    EXPECT_EQ(chromeTraceJson(mux), chromeTraceJson(bare));
}

TEST(TraceMuxTest, ShardedLanesAreIndependentNamespacedRings)
{
    TraceMux mux(enabledConfig(1u << 14), /*smLanes=*/2);
    EXPECT_TRUE(mux.sharded());
    EXPECT_EQ(mux.laneCount(), 3u);
    EXPECT_NE(mux.lane(0), mux.lane(1));
    EXPECT_NE(mux.hub(), mux.lane(0));
    // Hub keeps the serial id sequence; lanes tag theirs at bit 40.
    EXPECT_EQ(mux.hub()->nextId(), 1u);
    EXPECT_EQ(mux.lane(0)->nextId(), (1ull << 40) | 1u);
    EXPECT_EQ(mux.lane(1)->nextId(), (2ull << 40) | 1u);
    // Aggregate accounting sums over every ring.
    mux.hub()->instant(kTraceMm, TraceTrack::Mm, "h", 1);
    mux.lane(0)->instant(kTraceVm, TraceTrack::Vm, "a", 2);
    mux.lane(1)->instant(kTraceVm, TraceTrack::Vm, "b", 3);
    EXPECT_EQ(mux.size(), 3u);
    EXPECT_EQ(mux.recorded(), 3u);
    EXPECT_EQ(mux.dropped(), 0u);
}

TEST(TraceMuxTest, MergedExportOrdersByTimeThenLane)
{
    // Lane events interleave with hub events by timestamp; ties resolve
    // hub-first then by lane index (the canonical exchange order).
    TraceMux mux(enabledConfig(1u << 14), /*smLanes=*/2);
    mux.lane(1)->instant(kTraceVm, TraceTrack::Vm, "sm1", 10);
    mux.hub()->instant(kTraceMm, TraceTrack::Mm, "hub", 10);
    mux.lane(0)->instant(kTraceVm, TraceTrack::Vm, "sm0", 10);
    mux.lane(0)->instant(kTraceVm, TraceTrack::Vm, "early", 5);

    const std::string json = chromeTraceJson(mux);
    JsonValue root;
    ASSERT_TRUE(parseJson(json, root, nullptr));
    std::vector<std::string> order;
    std::vector<double> tids;
    for (const JsonValue &e : root.get("traceEvents")->array) {
        if (e.str("ph") == "M")
            continue;
        order.push_back(e.str("name"));
        tids.push_back(e.num("tid"));
    }
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "early");
    EXPECT_EQ(order[1], "hub");
    EXPECT_EQ(order[2], "sm0");
    EXPECT_EQ(order[3], "sm1");
    // tid = 16 * lane + track (hub = lane 0, SM i = lane i + 1).
    EXPECT_EQ(tids[1], 0 * 16 + 3);   // hub, Mm track
    EXPECT_EQ(tids[2], 1 * 16 + 2);   // sm0, Vm track
    EXPECT_EQ(tids[3], 2 * 16 + 2);   // sm1, Vm track

    const TraceCheckResult check = validateChromeTraceText(json);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.lanes, 3u);
}

TEST(TraceValidateTest, CollectsSpanDurationStats)
{
    Tracer t(enabledConfig(64));
    t.complete(kTraceEngine, TraceTrack::Engine, "tick", 0, 10);
    t.complete(kTraceEngine, TraceTrack::Engine, "tick", 20, 30);
    t.complete(kTraceEngine, TraceTrack::Engine, "tick", 60, 20);
    const auto id = traceId(TraceIdSpace::Walk, 1);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk", id, 100);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk", id, 140);

    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t), /*collectStats=*/true);
    ASSERT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    ASSERT_EQ(check.spanStats.size(), 2u);
    const SpanStats &tick = check.spanStats[0];
    EXPECT_EQ(tick.name, "tick");
    EXPECT_EQ(tick.count, 3u);
    EXPECT_DOUBLE_EQ(tick.mean, 20.0);
    EXPECT_DOUBLE_EQ(tick.p50, 20.0);  // nearest rank of {10, 20, 30}
    EXPECT_DOUBLE_EQ(tick.p95, 30.0);
    EXPECT_DOUBLE_EQ(tick.max, 30.0);
    const SpanStats &walk = check.spanStats[1];
    EXPECT_EQ(walk.name, "walk");
    EXPECT_EQ(walk.count, 1u);
    EXPECT_DOUBLE_EQ(walk.p99, 40.0);
}

TEST(TraceValidateTest, CatchesAsyncSeriesMigratingLanes)
{
    // An async span that begins on one lane's tid and ends on another's
    // violates the cross-lane flow contract.
    TraceMux mux(enabledConfig(1u << 14), /*smLanes=*/2);
    const auto id = traceId(TraceIdSpace::TlbMiss, 7);
    mux.lane(0)->asyncBegin(kTraceVm, TraceTrack::Vm, "tlbMiss", id, 10);
    mux.lane(1)->asyncEnd(kTraceVm, TraceTrack::Vm, "tlbMiss", id, 20);
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(mux));
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.errors.empty());
    EXPECT_NE(check.errors.front().find("moved from tid"),
              std::string::npos);
}

TEST(TraceValidateTest, CatchesLifecycleViolations)
{
    Tracer t(enabledConfig(64));
    const auto id = traceId(TraceIdSpace::Frame, 9);
    t.asyncBegin(kTraceMm, TraceTrack::Mm, "frame", id, 10);
    // Splinter without a preceding coalesce is illegal.
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.splinter", id, 20);
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t));
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.errors.empty());
    EXPECT_NE(check.errors.front().find("splinter"), std::string::npos);
}

TEST(TraceValidateTest, CatchesCounterEventMismatch)
{
    Tracer t(enabledConfig(64, kTraceMm | kTraceCounter));
    const auto id = traceId(TraceIdSpace::Frame, 1);
    t.asyncBegin(kTraceMm, TraceTrack::Mm, "frame", id, 10);
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.coalesce", id, 20);
    t.counter("mm.coalesceOps", 30, 5);  // stream only contains 1
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t));
    EXPECT_FALSE(check.ok);
}

TEST(TraceValidateTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(validateChromeTraceText("not json").ok);
    EXPECT_FALSE(validateChromeTraceText("[]").ok);
    EXPECT_FALSE(validateChromeTraceText("{}").ok);
    EXPECT_TRUE(
        validateChromeTraceText("{\"traceEvents\":[]}").ok);
}

// ---------------------------------------------------------------------
// End-to-end: tracing a real simulation.

Workload
tracedWorkload()
{
    Workload w = scaledWorkload(homogeneousWorkload("HISTO", 2), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 300;
    return w;
}

SimConfig
tracedConfig()
{
    SimConfig c = SimConfig::mosaicDefault();
    c.gpu.sm.warpsPerSm = 8;
    c = c.withIoCompression(16.0);
    c.churn.enabled = true;
    // Tight memory so CAC compaction has something to do.
    c.pageTablePoolBytes = 16ull << 20;
    c.dram.capacityBytes = std::max<std::uint64_t>(
        roundUp(tracedWorkload().workingSetBytes() * 8, kLargePageSize) +
            c.pageTablePoolBytes + (8ull << 20),
        64ull << 20);
    return c.withTracing();
}

TEST(TraceSimulationTest, TracedRunProducesValidLifecycles)
{
    const SimResult r = runSimulation(tracedWorkload(), tracedConfig());
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->size(), 0u);

    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(*r.trace, r.configLabel));
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.dropped, 0u);
    EXPECT_GT(check.walkSpans, 0u);
    EXPECT_GT(check.frameLifecycles, 0u);
    EXPECT_GT(check.completeLifecycles, 0u);
    EXPECT_GT(check.coalesces, 0u);
    EXPECT_GT(check.splinters, 0u);
    EXPECT_GT(check.counterSamples, 0u);
}

TEST(TraceSimulationTest, TracingIsObservationOnly)
{
    const Workload w = tracedWorkload();
    SimConfig off = tracedConfig();
    off.trace.enabled = false;
    const SimResult traced = runSimulation(w, tracedConfig());
    const SimResult plain = runSimulation(w, off);
    EXPECT_EQ(plain.trace, nullptr);
    // Byte-identical result reports (SimResult::trace is not part of
    // the report, so this compares every metric the run produced).
    EXPECT_EQ(toJson(traced), toJson(plain));
    EXPECT_EQ(traced.totalCycles, plain.totalCycles);
    EXPECT_EQ(traced.pageWalks, plain.pageWalks);
}

TEST(TraceSimulationTest, TraceIsDeterministicSerially)
{
    const Workload w = tracedWorkload();
    const SimConfig c = tracedConfig();
    const SimResult a = runSimulation(w, c);
    const SimResult b = runSimulation(w, c);
    ASSERT_NE(a.trace, nullptr);
    ASSERT_NE(b.trace, nullptr);
    EXPECT_EQ(chromeTraceJson(*a.trace), chromeTraceJson(*b.trace));
}

TEST(TraceSimulationTest, TraceIsDeterministicUnderSweepRunner)
{
    const Workload w = tracedWorkload();
    const SimConfig c = tracedConfig();
    const SimResult serial = runSimulation(w, c);
    SweepRunner runner(2);
    auto f1 = runner.submitSimulation(w, c, "t1");
    auto f2 = runner.submitSimulation(w, c, "t2");
    const SimResult p1 = f1.get();
    const SimResult p2 = f2.get();
    ASSERT_NE(serial.trace, nullptr);
    ASSERT_NE(p1.trace, nullptr);
    ASSERT_NE(p2.trace, nullptr);
    const std::string expected = chromeTraceJson(*serial.trace);
    EXPECT_EQ(chromeTraceJson(*p1.trace), expected);
    EXPECT_EQ(chromeTraceJson(*p2.trace), expected);
}

}  // namespace
}  // namespace mosaic
