/** @file Tests of the event tracer: ring buffer semantics, category
 *  gating, export/replay round trips, trace determinism (serial and
 *  under the parallel SweepRunner), the observation-only guarantee, and
 *  the trace_check invariant validator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runner/json_report.h"
#include "runner/simulation.h"
#include "runner/sweep.h"
#include "trace/trace_export.h"
#include "trace/trace_reader.h"
#include "trace/trace_validate.h"
#include "trace/tracer.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

TraceConfig
enabledConfig(std::size_t capacity = 1u << 12,
              std::uint32_t categories = kTraceAll)
{
    TraceConfig c;
    c.enabled = true;
    c.categories = categories;
    c.ringCapacity = capacity;
    return c;
}

std::vector<const TraceEvent *>
eventsOf(const Tracer &t)
{
    std::vector<const TraceEvent *> out;
    t.forEach([&out](const TraceEvent &e) { out.push_back(&e); });
    return out;
}

TEST(TracerTest, DisabledTracerRecordsNothing)
{
    TraceConfig config;  // enabled = false
    config.categories = kTraceAll;
    Tracer t(config);
    EXPECT_EQ(t.mask(), 0u);
    EXPECT_FALSE(t.on(kTraceMm));
    t.instant(kTraceMm, TraceTrack::Mm, "x", 1);
    t.counter("c", 2, 3);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
}

TEST(TracerTest, CategoryMaskGatesPerCategory)
{
    Tracer t(enabledConfig(64, kTraceMm | kTraceCounter));
    EXPECT_TRUE(t.on(kTraceMm));
    EXPECT_TRUE(t.on(kTraceCounter));
    EXPECT_FALSE(t.on(kTraceVm));
    EXPECT_FALSE(t.on(kTraceIo));
    t.instant(kTraceVm, TraceTrack::Vm, "dropped", 1);
    t.instant(kTraceMm, TraceTrack::Mm, "kept", 2);
    t.counter("kept.counter", 3, 7);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_STREQ(eventsOf(t)[0]->name, "kept");
    EXPECT_STREQ(eventsOf(t)[1]->name, "kept.counter");
}

TEST(TracerTest, RingWrapsDroppingOldest)
{
    Tracer t(enabledConfig(8));
    for (Cycles ts = 0; ts < 20; ++ts)
        t.instant(kTraceMm, TraceTrack::Mm, "e", ts, {"i", ts});
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.dropped(), 12u);
    EXPECT_EQ(t.recorded(), 20u);
    // Survivors are the newest 8, visited oldest-first.
    const auto events = eventsOf(t);
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i]->ts, 12 + i);
}

TEST(TracerTest, NextIdIsDeterministic)
{
    Tracer a(enabledConfig());
    Tracer b(enabledConfig());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(a.nextId(), b.nextId());
}

TEST(TracerTest, TraceIdNamespacesNeverCollide)
{
    const auto walk = traceId(TraceIdSpace::Walk, 7);
    const auto frame = traceId(TraceIdSpace::Frame, 7);
    EXPECT_NE(walk, frame);
    // The value survives in the low bits.
    EXPECT_EQ(walk & ((1ull << 56) - 1), 7u);
    EXPECT_EQ(frame & ((1ull << 56) - 1), 7u);
}

TEST(TraceCategoryTest, ParseAcceptsAllForms)
{
    std::uint32_t mask = 0;
    EXPECT_TRUE(parseTraceCategories("all", &mask));
    EXPECT_EQ(mask, kTraceAll);
    EXPECT_TRUE(parseTraceCategories("0x6", &mask));
    EXPECT_EQ(mask, kTraceVm | kTraceMm);
    EXPECT_TRUE(parseTraceCategories("63", &mask));
    EXPECT_EQ(mask, kTraceAll);
    EXPECT_TRUE(parseTraceCategories("vm,mm,counter", &mask));
    EXPECT_EQ(mask, kTraceVm | kTraceMm | kTraceCounter);
    std::uint32_t untouched = 42;
    EXPECT_FALSE(parseTraceCategories("vm,bogus", &untouched));
    EXPECT_EQ(untouched, 42u);
    EXPECT_FALSE(parseTraceCategories("", &untouched));
}

TEST(TraceExportTest, RoundTripsThroughReader)
{
    Tracer t(enabledConfig(64));
    t.asyncBegin(kTraceMm, TraceTrack::Mm, "frame",
                 traceId(TraceIdSpace::Frame, 3), 10, {"app", 1});
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.coalesce",
                   traceId(TraceIdSpace::Frame, 3), 20, {"resident", 512});
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.splinter",
                   traceId(TraceIdSpace::Frame, 3), 30);
    t.asyncEnd(kTraceMm, TraceTrack::Mm, "frame",
               traceId(TraceIdSpace::Frame, 3), 40);
    t.counter("mm.coalesceOps", 50, 1);
    t.counter("mm.splinterOps", 50, 1);

    const std::string json = chromeTraceJson(t, "unit-test");
    JsonValue root;
    std::string error;
    ASSERT_TRUE(parseJson(json, root, &error)) << error;
    const JsonValue *events = root.get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // 6 recorded + 2 x 7 metadata (process + track names).
    EXPECT_GT(events->array.size(), 6u);

    const TraceCheckResult check = validateChromeTrace(root);
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.frameLifecycles, 1u);
    EXPECT_EQ(check.completeLifecycles, 1u);
    EXPECT_EQ(check.coalesces, 1u);
    EXPECT_EQ(check.splinters, 1u);
    EXPECT_EQ(check.counterSamples, 2u);
    EXPECT_EQ(check.openSpans, 0u);
}

TEST(TraceExportTest, NestedSpansOnOneIdValidate)
{
    // The walker nests walk.queued / walk.L* under the walk's own id
    // (nestable async semantics are positional); the validator must
    // treat per-id opens as a stack, not a single slot.
    Tracer t(enabledConfig(64));
    const auto id = traceId(TraceIdSpace::Walk, 1);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk", id, 10);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk.L1", id, 12);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk.L1", id, 20);
    t.asyncBegin(kTraceVm, TraceTrack::Vm, "walk.L2", id, 20);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk.L2", id, 30);
    t.asyncEnd(kTraceVm, TraceTrack::Vm, "walk", id, 31);
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t));
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.walkSpans, 1u);
    EXPECT_EQ(check.openSpans, 0u);
}

TEST(TraceValidateTest, CatchesLifecycleViolations)
{
    Tracer t(enabledConfig(64));
    const auto id = traceId(TraceIdSpace::Frame, 9);
    t.asyncBegin(kTraceMm, TraceTrack::Mm, "frame", id, 10);
    // Splinter without a preceding coalesce is illegal.
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.splinter", id, 20);
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t));
    EXPECT_FALSE(check.ok);
    ASSERT_FALSE(check.errors.empty());
    EXPECT_NE(check.errors.front().find("splinter"), std::string::npos);
}

TEST(TraceValidateTest, CatchesCounterEventMismatch)
{
    Tracer t(enabledConfig(64, kTraceMm | kTraceCounter));
    const auto id = traceId(TraceIdSpace::Frame, 1);
    t.asyncBegin(kTraceMm, TraceTrack::Mm, "frame", id, 10);
    t.asyncInstant(kTraceMm, TraceTrack::Mm, "frame.coalesce", id, 20);
    t.counter("mm.coalesceOps", 30, 5);  // stream only contains 1
    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(t));
    EXPECT_FALSE(check.ok);
}

TEST(TraceValidateTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(validateChromeTraceText("not json").ok);
    EXPECT_FALSE(validateChromeTraceText("[]").ok);
    EXPECT_FALSE(validateChromeTraceText("{}").ok);
    EXPECT_TRUE(
        validateChromeTraceText("{\"traceEvents\":[]}").ok);
}

// ---------------------------------------------------------------------
// End-to-end: tracing a real simulation.

Workload
tracedWorkload()
{
    Workload w = scaledWorkload(homogeneousWorkload("HISTO", 2), 0.08);
    for (AppParams &a : w.apps)
        a.instrPerWarp = 300;
    return w;
}

SimConfig
tracedConfig()
{
    SimConfig c = SimConfig::mosaicDefault();
    c.gpu.sm.warpsPerSm = 8;
    c = c.withIoCompression(16.0);
    c.churn.enabled = true;
    // Tight memory so CAC compaction has something to do.
    c.pageTablePoolBytes = 16ull << 20;
    c.dram.capacityBytes = std::max<std::uint64_t>(
        roundUp(tracedWorkload().workingSetBytes() * 8, kLargePageSize) +
            c.pageTablePoolBytes + (8ull << 20),
        64ull << 20);
    return c.withTracing();
}

TEST(TraceSimulationTest, TracedRunProducesValidLifecycles)
{
    const SimResult r = runSimulation(tracedWorkload(), tracedConfig());
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->size(), 0u);

    const TraceCheckResult check =
        validateChromeTraceText(chromeTraceJson(*r.trace, r.configLabel));
    EXPECT_TRUE(check.ok) << (check.errors.empty() ? ""
                                                   : check.errors.front());
    EXPECT_EQ(check.dropped, 0u);
    EXPECT_GT(check.walkSpans, 0u);
    EXPECT_GT(check.frameLifecycles, 0u);
    EXPECT_GT(check.completeLifecycles, 0u);
    EXPECT_GT(check.coalesces, 0u);
    EXPECT_GT(check.splinters, 0u);
    EXPECT_GT(check.counterSamples, 0u);
}

TEST(TraceSimulationTest, TracingIsObservationOnly)
{
    const Workload w = tracedWorkload();
    SimConfig off = tracedConfig();
    off.trace.enabled = false;
    const SimResult traced = runSimulation(w, tracedConfig());
    const SimResult plain = runSimulation(w, off);
    EXPECT_EQ(plain.trace, nullptr);
    // Byte-identical result reports (SimResult::trace is not part of
    // the report, so this compares every metric the run produced).
    EXPECT_EQ(toJson(traced), toJson(plain));
    EXPECT_EQ(traced.totalCycles, plain.totalCycles);
    EXPECT_EQ(traced.pageWalks, plain.pageWalks);
}

TEST(TraceSimulationTest, TraceIsDeterministicSerially)
{
    const Workload w = tracedWorkload();
    const SimConfig c = tracedConfig();
    const SimResult a = runSimulation(w, c);
    const SimResult b = runSimulation(w, c);
    ASSERT_NE(a.trace, nullptr);
    ASSERT_NE(b.trace, nullptr);
    EXPECT_EQ(chromeTraceJson(*a.trace), chromeTraceJson(*b.trace));
}

TEST(TraceSimulationTest, TraceIsDeterministicUnderSweepRunner)
{
    const Workload w = tracedWorkload();
    const SimConfig c = tracedConfig();
    const SimResult serial = runSimulation(w, c);
    SweepRunner runner(2);
    auto f1 = runner.submitSimulation(w, c, "t1");
    auto f2 = runner.submitSimulation(w, c, "t2");
    const SimResult p1 = f1.get();
    const SimResult p2 = f2.get();
    ASSERT_NE(serial.trace, nullptr);
    ASSERT_NE(p1.trace, nullptr);
    ASSERT_NE(p2.trace, nullptr);
    const std::string expected = chromeTraceJson(*serial.trace);
    EXPECT_EQ(chromeTraceJson(*p1.trace), expected);
    EXPECT_EQ(chromeTraceJson(*p2.trace), expected);
}

}  // namespace
}  // namespace mosaic
