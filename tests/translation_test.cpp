/** @file Unit tests for the full translation service (L1 TLB -> L2 TLB
 *  -> walker), fill policies, and shootdowns. */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "dram/dram.h"
#include "engine/event_queue.h"
#include "vm/translation.h"

namespace mosaic {
namespace {

struct XlateRig
{
    EventQueue ev;
    DramModel dram;
    CacheHierarchy caches;
    PageTableWalker walker;
    TranslationService xlate;
    RegionPtNodeAllocator alloc{1ull << 32, 64ull << 20};
    PageTable pt{0, alloc};

    explicit XlateRig(TranslationConfig cfg = TranslationConfig{})
        : dram(ev, DramConfig{}),
          caches(ev, dram, CacheHierarchyConfig{}),
          walker(ev, caches, WalkerConfig{}),
          xlate(ev, walker, 4, cfg)
    {
    }

    Translation
    timedTranslate(SmId sm, Addr va, Cycles *latency = nullptr)
    {
        Translation out;
        const Cycles start = ev.now();
        bool done = false;
        xlate.translate(sm, pt, va, [&](const Translation &t) {
            out = t;
            done = true;
            if (latency != nullptr)
                *latency = ev.now() - start;
        });
        ev.runAll();
        EXPECT_TRUE(done);
        return out;
    }
};

TEST(TranslationTest, MissWalksThenHitsL1)
{
    XlateRig rig;
    rig.pt.mapBasePage(0x4000, 0x8000);

    Cycles miss_latency = 0;
    const Translation first = rig.timedTranslate(0, 0x4000, &miss_latency);
    ASSERT_TRUE(first.valid);
    EXPECT_EQ(rig.xlate.stats().walksIssued, 1u);
    EXPECT_GT(miss_latency, 100u);  // real walk through DRAM

    Cycles hit_latency = 0;
    rig.timedTranslate(0, 0x4000, &hit_latency);
    EXPECT_EQ(hit_latency, 1u);
    EXPECT_EQ(rig.xlate.stats().l1Hits, 1u);
    EXPECT_EQ(rig.xlate.stats().walksIssued, 1u);  // no second walk
}

TEST(TranslationTest, SecondSmHitsSharedL2Tlb)
{
    XlateRig rig;
    rig.pt.mapBasePage(0x4000, 0x8000);
    rig.timedTranslate(0, 0x4000);
    rig.timedTranslate(1, 0x4000);
    EXPECT_EQ(rig.xlate.stats().l2Hits, 1u);
    EXPECT_EQ(rig.xlate.stats().walksIssued, 1u);
}

TEST(TranslationTest, ConcurrentMissesMergeInMshr)
{
    XlateRig rig;
    rig.pt.mapBasePage(0x4000, 0x8000);
    int done = 0;
    for (int i = 0; i < 6; ++i)
        rig.xlate.translate(0, rig.pt, 0x4000 + 64u * i,
                            [&](const Translation &) { ++done; });
    rig.ev.runAll();
    EXPECT_EQ(done, 6);
    EXPECT_EQ(rig.xlate.stats().walksIssued, 1u);
    EXPECT_EQ(rig.xlate.stats().mshrMerges, 5u);
}

TEST(TranslationTest, UnmappedPageReportsFault)
{
    XlateRig rig;
    const Translation t = rig.timedTranslate(0, 0xBAD000);
    EXPECT_FALSE(t.valid);
    EXPECT_EQ(rig.xlate.stats().faults, 1u);
}

TEST(TranslationTest, CoalescedPageFillsOnlyLargeArrays)
{
    XlateRig rig;
    const Addr va = 4ull << kLargePageBits;
    const Addr pa = 6ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);

    rig.timedTranslate(0, va);
    EXPECT_EQ(rig.xlate.l1Tlb(0).largeOccupancy(), 1u);
    EXPECT_EQ(rig.xlate.l1Tlb(0).baseOccupancy(), 0u);
    EXPECT_EQ(rig.xlate.l2Tlb().largeOccupancy(), 1u);
    EXPECT_EQ(rig.xlate.l2Tlb().baseOccupancy(), 0u);

    // Any page of the region now hits via the single large entry.
    Cycles lat = 0;
    rig.timedTranslate(0, va + 100 * kBasePageSize, &lat);
    EXPECT_EQ(lat, 1u);
}

TEST(TranslationTest, UncoalescedPageFillsBaseArrays)
{
    XlateRig rig;
    rig.pt.mapBasePage(0x4000, 0x8000);
    rig.timedTranslate(0, 0x4000);
    EXPECT_EQ(rig.xlate.l1Tlb(0).baseOccupancy(), 1u);
    EXPECT_EQ(rig.xlate.l1Tlb(0).largeOccupancy(), 0u);
}

TEST(TranslationTest, ShootdownLargeRemovesFromAllLevels)
{
    XlateRig rig;
    const Addr va = 4ull << kLargePageBits;
    const Addr pa = 6ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);
    rig.timedTranslate(0, va);
    rig.timedTranslate(1, va);

    rig.xlate.shootdownLarge(0, va);
    EXPECT_EQ(rig.xlate.l1Tlb(0).largeOccupancy(), 0u);
    EXPECT_EQ(rig.xlate.l1Tlb(1).largeOccupancy(), 0u);
    EXPECT_EQ(rig.xlate.l2Tlb().largeOccupancy(), 0u);
}

TEST(TranslationTest, ShootdownBaseRemovesEntry)
{
    XlateRig rig;
    rig.pt.mapBasePage(0x4000, 0x8000);
    rig.timedTranslate(0, 0x4000);
    rig.xlate.shootdownBase(0, 0x4000);
    EXPECT_EQ(rig.xlate.l1Tlb(0).baseOccupancy(), 0u);
    EXPECT_EQ(rig.xlate.l2Tlb().baseOccupancy(), 0u);
}

TEST(TranslationTest, IdealTlbAlwaysSingleCycle)
{
    TranslationConfig cfg;
    cfg.idealTlb = true;
    XlateRig rig(cfg);
    rig.pt.mapBasePage(0x4000, 0x8000);
    Cycles lat = 0;
    const Translation t = rig.timedTranslate(0, 0x4000, &lat);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(lat, 1u);
    EXPECT_EQ(rig.xlate.stats().walksIssued, 0u);
}

TEST(TranslationTest, IdealTlbStillFaultsOnUnmapped)
{
    TranslationConfig cfg;
    cfg.idealTlb = true;
    XlateRig rig(cfg);
    const Translation t = rig.timedTranslate(0, 0xBAD000);
    EXPECT_FALSE(t.valid);
    EXPECT_EQ(rig.xlate.stats().faults, 1u);
}

TEST(TranslationTest, PerAppStatsTrackIndependently)
{
    XlateRig rig;
    RegionPtNodeAllocator alloc2(2ull << 32, 64ull << 20);
    PageTable pt2(1, alloc2);
    rig.pt.mapBasePage(0x4000, 0x8000);
    pt2.mapBasePage(0x4000, 0x9000);

    rig.timedTranslate(0, 0x4000);  // app 0: walk
    rig.timedTranslate(0, 0x4000);  // app 0: L1 hit
    Translation t2;
    rig.xlate.translate(1, pt2, 0x4000,
                        [&](const Translation &t) { t2 = t; });
    rig.ev.runAll();
    ASSERT_TRUE(t2.valid);

    const auto a0 = rig.xlate.appStats(0);
    const auto a1 = rig.xlate.appStats(1);
    EXPECT_EQ(a0.requests, 2u);
    EXPECT_EQ(a0.l1Hits, 1u);
    EXPECT_EQ(a0.walks, 1u);
    EXPECT_EQ(a1.requests, 1u);
    EXPECT_EQ(a1.l1Hits, 0u);
    EXPECT_EQ(a1.walks, 1u);
    EXPECT_EQ(rig.xlate.appStats(9).requests, 0u);
}

TEST(TranslationTest, L1StatsTotalSumsAcrossSms)
{
    XlateRig rig;
    rig.pt.mapBasePage(0x4000, 0x8000);
    rig.timedTranslate(0, 0x4000);
    rig.timedTranslate(1, 0x4000);
    rig.timedTranslate(1, 0x4000);
    const Tlb::Stats total = rig.xlate.l1StatsTotal();
    EXPECT_GE(total.accesses(), 3u);
}

}  // namespace
}  // namespace mosaic
