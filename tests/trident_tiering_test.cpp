/** @file Unit tests for intermediate-level (Trident) tiering in the
 *  Mosaic manager: mid-run promotion by the In-Place Coalescer and
 *  demotion through CAC on release. DESIGN.md §13. */

#include <gtest/gtest.h>

#include "common/stats_registry.h"
#include "mm/mosaic_manager.h"
#include "vm/page_table.h"

namespace mosaic {
namespace {

constexpr Addr kVa = 1ull << 40;

/** Trident sizes with top promotion deferred until full residency, so
 *  the intermediate tier is what provides reach while pages fault in. */
MosaicConfig
tridentConfig(unsigned threshold = kBasePagesPerLargePage)
{
    MosaicConfig cfg;
    cfg.sizes = PageSizeHierarchy::trident();
    cfg.coalesceResidentThreshold = threshold;
    return cfg;
}

struct TridentRig
{
    RegionPtNodeAllocator alloc{1ull << 33, 256ull << 20};
    MosaicManager mgr;
    PageTable pt;

    explicit TridentRig(MosaicConfig cfg = tridentConfig())
        : mgr(0, 64 * kLargePageSize, cfg),
          pt(0, alloc, cfg.sizes)
    {
        mgr.setEnv(ManagerEnv{});
        mgr.registerApp(0, pt);
    }

    /** Faults pages [first, first+count) of the region at kVa. */
    void
    back(std::uint64_t first, std::uint64_t count)
    {
        for (std::uint64_t i = first; i < first + count; ++i)
            EXPECT_TRUE(mgr.backPage(0, kVa + i * kBasePageSize));
    }
};

const std::uint64_t kRunPages = PageSizeHierarchy::trident().basePagesPer(1);

TEST(TridentTieringTest, MidRunPromotesWhenFullyResident)
{
    TridentRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize);
    // Deferred top promotion: the chunk is committed but not coalesced.
    EXPECT_FALSE(rig.pt.isCoalesced(kVa));

    rig.back(0, kRunPages - 1);
    EXPECT_FALSE(rig.pt.isCoalescedAt(kVa, 1));  // one page short

    rig.back(kRunPages - 1, 1);
    EXPECT_TRUE(rig.pt.isCoalescedAt(kVa, 1));
    EXPECT_EQ(rig.mgr.stats().midCoalesceOps, 1u);
    const Translation t = rig.pt.translate(kVa);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.level, 1u);

    // The frame's run mask mirrors the page-table bit.
    const std::size_t f = rig.mgr.state().pool.frameIndex(t.physAddr);
    EXPECT_TRUE(rig.mgr.state().pool.frame(f).hasMidRuns());
    EXPECT_EQ(rig.mgr.state().pool.frame(f).midRuns[0] & 1u, 1u);
}

TEST(TridentTieringTest, RunsPromoteIndependently)
{
    TridentRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize);
    rig.back(2 * kRunPages, kRunPages);  // run 2 only
    EXPECT_FALSE(rig.pt.isCoalescedAt(kVa, 1));
    EXPECT_TRUE(rig.pt.isCoalescedAt(kVa + 2 * kRunPages * kBasePageSize, 1));
    EXPECT_EQ(rig.mgr.stats().midCoalesceOps, 1u);
}

TEST(TridentTieringTest, FullResidencyPromotesTopOverMidRuns)
{
    TridentRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize);
    rig.back(0, kBasePagesPerLargePage);
    // Runs promote along the way; the last run's final page completes
    // the whole frame, so the top-level promotion wins there instead.
    EXPECT_EQ(rig.mgr.stats().midCoalesceOps,
              kBasePagesPerLargePage / kRunPages - 1);
    EXPECT_TRUE(rig.pt.isCoalesced(kVa));
    EXPECT_EQ(rig.mgr.stats().coalesceOps, 1u);
    const Translation t = rig.pt.translate(kVa + 5 * kBasePageSize);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.level, rig.pt.sizes().topLevel());
}

TEST(TridentTieringTest, BrokenRunIsDemotedOnRelease)
{
    TridentRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize);
    rig.back(0, kRunPages);
    ASSERT_TRUE(rig.pt.isCoalescedAt(kVa, 1));

    // Releasing one page breaks the run's contiguity: CAC must demote
    // it (splinterMidRuns with onlyBroken) before the hole exists.
    rig.mgr.releaseRegion(0, kVa + 3 * kBasePageSize, kBasePageSize);
    EXPECT_FALSE(rig.pt.isCoalescedAt(kVa, 1));
    EXPECT_EQ(rig.mgr.stats().midSplinterOps, 1u);
}

TEST(TridentTieringTest, IntactRunsKeepTheirReachOnReleaseElsewhere)
{
    TridentRig rig;
    rig.mgr.reserveRegion(0, kVa, kLargePageSize);
    rig.back(0, 2 * kRunPages);  // runs 0 and 1 promoted
    ASSERT_EQ(rig.mgr.stats().midCoalesceOps, 2u);

    rig.mgr.releaseRegion(0, kVa + (kRunPages + 1) * kBasePageSize,
                          kBasePageSize);  // hole in run 1
    EXPECT_TRUE(rig.pt.isCoalescedAt(kVa, 1));  // run 0 untouched
    EXPECT_FALSE(
        rig.pt.isCoalescedAt(kVa + kRunPages * kBasePageSize, 1));
    EXPECT_EQ(rig.mgr.stats().midSplinterOps, 1u);
}

TEST(TridentTieringTest, DefaultPairNeverTiersAndHidesTheMetrics)
{
    // The default two-size pair must not grow new metric names (the
    // golden suite byte-compares metric snapshots) nor new behavior.
    MosaicConfig def;
    RegionPtNodeAllocator alloc{1ull << 33, 256ull << 20};
    MosaicManager mgr(0, 64 * kLargePageSize, def);
    PageTable pt(0, alloc);
    mgr.setEnv(ManagerEnv{});
    mgr.registerApp(0, pt);
    StatsRegistry reg;
    mgr.registerMetrics(reg);
    EXPECT_EQ(reg.snapshot(0).find("mm.mosaic.midCoalesceOps"), nullptr);

    StatsRegistry treg;
    TridentRig trig;
    trig.mgr.registerMetrics(treg);
    EXPECT_NE(treg.snapshot(0).find("mm.mosaic.midCoalesceOps"), nullptr);
}

}  // namespace
}  // namespace mosaic
