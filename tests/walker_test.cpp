/** @file Unit tests for the highly-threaded page-table walker. */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "dram/dram.h"
#include "engine/event_queue.h"
#include "vm/page_table.h"
#include "vm/walker.h"

namespace mosaic {
namespace {

struct WalkRig
{
    EventQueue ev;
    DramModel dram;
    CacheHierarchy caches;
    RegionPtNodeAllocator alloc{1ull << 32, 64ull << 20};
    PageTable pt{0, alloc};

    explicit WalkRig()
        : dram(ev, DramConfig{}),
          caches(ev, dram, CacheHierarchyConfig{})
    {
    }

    PageTableWalker
    makeWalker(WalkerConfig cfg = WalkerConfig{})
    {
        return PageTableWalker(ev, caches, cfg);
    }
};

TEST(WalkerTest, WalkResolvesMappedPage)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    rig.pt.mapBasePage(0x4000, 0x8000);
    Translation result;
    bool done = false;
    walker.requestWalk(rig.pt, 0x4000, [&](const Translation &t) {
        result = t;
        done = true;
    });
    rig.ev.runAll();
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.physAddr, 0x8000u);
    EXPECT_EQ(walker.stats().walks, 1u);
    EXPECT_EQ(walker.stats().faults, 0u);
}

TEST(WalkerTest, WalkTakesFourMemoryAccesses)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    rig.pt.mapBasePage(0x4000, 0x8000);
    const std::uint64_t reads_before = rig.dram.stats().reads;
    bool done = false;
    walker.requestWalk(rig.pt, 0x4000, [&](const Translation &) {
        done = true;
    });
    rig.ev.runAll();
    ASSERT_TRUE(done);
    EXPECT_EQ(rig.dram.stats().reads - reads_before, 4u);
}

TEST(WalkerTest, WalkOfUnmappedPageFaults)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    Translation result;
    result.valid = true;
    walker.requestWalk(rig.pt, 0xDEAD000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    EXPECT_FALSE(result.valid);
    EXPECT_EQ(walker.stats().faults, 1u);
}

TEST(WalkerTest, CoalescedRegionYieldsLargeTranslation)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    const Addr va = 9ull << kLargePageBits;
    const Addr pa = 11ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);

    Translation result;
    walker.requestWalk(rig.pt, va + 0x5000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.size, PageSize::Large);
    EXPECT_EQ(walker.stats().largeResults, 1u);
}

TEST(WalkerTest, ConcurrencyCapQueuesExcessWalks)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.maxConcurrentWalks = 4;
    auto walker = rig.makeWalker(cfg);
    for (std::uint64_t i = 0; i < 16; ++i)
        rig.pt.mapBasePage(0x100000 + i * kBasePageSize, 0x200000 + i * 4096);

    int completions = 0;
    for (std::uint64_t i = 0; i < 16; ++i) {
        walker.requestWalk(rig.pt, 0x100000 + i * kBasePageSize,
                           [&](const Translation &t) {
            EXPECT_TRUE(t.valid);
            ++completions;
        });
    }
    EXPECT_LE(walker.activeWalks(), 4u);
    EXPECT_EQ(walker.queuedWalks(), 12u);
    EXPECT_EQ(walker.stats().queued, 12u);
    rig.ev.runAll();
    EXPECT_EQ(completions, 16);
    EXPECT_EQ(walker.activeWalks(), 0u);
}

TEST(WalkerTest, PageWalkCacheShortensRepeatWalks)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.usePageWalkCache = true;
    auto walker = rig.makeWalker(cfg);
    // Two pages under the same L4 node: upper levels shared.
    rig.pt.mapBasePage(0x10000, 0x20000);
    rig.pt.mapBasePage(0x11000, 0x21000);

    bool first = false;
    walker.requestWalk(rig.pt, 0x10000,
                       [&](const Translation &) { first = true; });
    rig.ev.runAll();
    ASSERT_TRUE(first);
    const std::uint64_t reads_after_first = rig.dram.stats().reads;

    bool second = false;
    walker.requestWalk(rig.pt, 0x11000,
                       [&](const Translation &) { second = true; });
    rig.ev.runAll();
    ASSERT_TRUE(second);
    // Upper three levels hit the PWC; only the leaf PTE goes to memory.
    EXPECT_EQ(rig.dram.stats().reads - reads_after_first, 1u);
    EXPECT_GE(walker.stats().pwcHits, 3u);
}

TEST(WalkerTest, PwcCountsMissesOnColdUpperLevelsAndHitsOnRepeat)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.usePageWalkCache = true;
    auto walker = rig.makeWalker(cfg);
    EXPECT_TRUE(walker.hasPageWalkCache());
    // Two base pages under the same leaf node: the three upper-level PTE
    // lines are identical between the two walks.
    rig.pt.mapBasePage(0x10000, 0x20000);
    rig.pt.mapBasePage(0x11000, 0x21000);

    walker.requestWalk(rig.pt, 0x10000, [](const Translation &) {});
    rig.ev.runAll();
    // Cold PWC: the three eligible upper levels all miss; the leaf PTE
    // is never PWC-eligible, so it contributes to neither counter.
    EXPECT_EQ(walker.stats().pwcMisses, 3u);
    EXPECT_EQ(walker.stats().pwcHits, 0u);

    walker.requestWalk(rig.pt, 0x11000, [](const Translation &) {});
    rig.ev.runAll();
    EXPECT_EQ(walker.stats().pwcHits, 3u);
    EXPECT_EQ(walker.stats().pwcMisses, 3u);
}

TEST(WalkerTest, PwcNeverShortCircuitsLeafLevel)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.usePageWalkCache = true;
    auto walker = rig.makeWalker(cfg);
    rig.pt.mapBasePage(0x10000, 0x20000);

    walker.requestWalk(rig.pt, 0x10000, [](const Translation &) {});
    rig.ev.runAll();
    const std::uint64_t reads_after_first = rig.dram.stats().reads;

    // Walking the exact same VA again: upper levels short-circuit via
    // the PWC, but the leaf PTE must still be read from memory.
    walker.requestWalk(rig.pt, 0x10000, [](const Translation &) {});
    rig.ev.runAll();
    EXPECT_EQ(rig.dram.stats().reads - reads_after_first, 1u);
    EXPECT_EQ(walker.stats().pwcHits, 3u);
}

TEST(WalkerTest, CoalescedWalkReadsFourLevelsAndSharesUpperPwcLines)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.usePageWalkCache = true;
    auto walker = rig.makeWalker(cfg);
    const Addr va = 9ull << kLargePageBits;
    const Addr pa = 11ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);

    // A coalesced walk reads the same four levels as a base walk: three
    // upper PTEs (the L3 one carrying the large bit) plus one L4 PTE
    // for the frame number (paper Fig. 7) -- coalescing changes what
    // the bits mean, not how many accesses the walk makes.
    Translation first;
    walker.requestWalk(rig.pt, va + 17 * kBasePageSize,
                       [&](const Translation &t) { first = t; });
    rig.ev.runAll();
    EXPECT_EQ(rig.dram.stats().reads, 4u);
    ASSERT_TRUE(first.valid);
    EXPECT_EQ(first.size, PageSize::Large);

    // Another page of the same region: upper levels (including the L3
    // large-bit PTE) hit the PWC, so only its own L4 PTE is read.
    Translation second;
    walker.requestWalk(rig.pt, va + 200 * kBasePageSize,
                       [&](const Translation &t) { second = t; });
    rig.ev.runAll();
    EXPECT_EQ(rig.dram.stats().reads, 5u);
    EXPECT_EQ(walker.stats().pwcHits, 3u);
    ASSERT_TRUE(second.valid);
    EXPECT_EQ(second.size, PageSize::Large);
    EXPECT_EQ(walker.stats().largeResults, 2u);
}

TEST(WalkerTest, SplinterInvalidatesExactlyTheL3PwcLine)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.usePageWalkCache = true;
    auto walker = rig.makeWalker(cfg);
    const Addr va = 5ull << kLargePageBits;
    const Addr pa = 7ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);

    walker.requestWalk(rig.pt, va, [](const Translation &) {});
    rig.ev.runAll();
    ASSERT_EQ(walker.stats().pwcMisses, 3u);

    // A splinter rewrites the region's L3 PTE; the stale PWC line must
    // go, or the next walk would short-circuit through old PTE bytes.
    rig.pt.splinter(va);
    walker.invalidatePwcForSplinter(rig.pt, va);

    Translation after;
    walker.requestWalk(rig.pt, va, [&](const Translation &t) { after = t; });
    rig.ev.runAll();
    // Root and L2 lines survive (2 hits); the invalidated L3 line
    // misses and re-reads memory, as does the always-uncached leaf.
    EXPECT_EQ(walker.stats().pwcHits, 2u);
    EXPECT_EQ(walker.stats().pwcMisses, 4u);
    EXPECT_EQ(rig.dram.stats().reads, 6u);
    ASSERT_TRUE(after.valid);
    EXPECT_EQ(after.size, PageSize::Base);
}

TEST(WalkerTest, NoPwcByDefault)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    EXPECT_FALSE(walker.hasPageWalkCache());
    rig.pt.mapBasePage(0x4000, 0x8000);
    walker.requestWalk(rig.pt, 0x4000, [](const Translation &) {});
    rig.ev.runAll();
    EXPECT_EQ(walker.stats().pwcHits, 0u);
    EXPECT_EQ(walker.stats().pwcMisses, 0u);
}

TEST(WalkerTest, TridentWalkDescendsFiveDepths)
{
    // {4K,64K,2M}: three radix-9 levels above 2MB plus one depth per
    // extra size boundary = 5 PTE reads per walk instead of 4.
    WalkRig rig;
    auto walker = rig.makeWalker();
    PageTable pt(1, rig.alloc, PageSizeHierarchy::trident());
    pt.mapBasePage(0x4000, 0x8000);
    Translation result;
    walker.requestWalk(pt, 0x4000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.physAddr, 0x8000u);
    EXPECT_EQ(result.level, 0u);
    EXPECT_EQ(rig.dram.stats().reads, 5u);
}

TEST(WalkerTest, TridentMidCoalescedRunYieldsMidLevelTranslation)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    const PageSizeHierarchy hs = PageSizeHierarchy::trident();
    PageTable pt(1, rig.alloc, hs);
    const Addr va = 3ull << hs.bits(1);
    const Addr pa = 9ull << hs.bits(1);
    for (std::uint64_t i = 0; i < hs.basePagesPer(1); ++i)
        pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    pt.coalesceLevel(va, 1);

    Translation result;
    walker.requestWalk(pt, va + 0x3000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.level, 1u);
    EXPECT_EQ(result.size, PageSize::Large);
    // Coalescing changes what the bits mean, not how many accesses the
    // walk makes (same contract as the default pair's four reads).
    EXPECT_EQ(rig.dram.stats().reads, 5u);
}

TEST(WalkerTest, SingleLevelHierarchyWalksFourDepths)
{
    // The degenerate base-only hierarchy {4K}: pure radix-9 descent,
    // no coalesced bits anywhere, same four depths as the default pair.
    WalkRig rig;
    auto walker = rig.makeWalker();
    const PageSizeHierarchy one{kBasePageBits};
    ASSERT_TRUE(one.valid());
    PageTable pt(1, rig.alloc, one);
    pt.mapBasePage(0x7000, 0x9000);
    Translation result;
    walker.requestWalk(pt, 0x7000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.physAddr, 0x9000u);
    EXPECT_EQ(result.level, 0u);
    EXPECT_EQ(result.size, PageSize::Base);
    EXPECT_EQ(rig.dram.stats().reads, 4u);
    EXPECT_EQ(walker.stats().largeResults, 0u);
}

TEST(WalkerTest, LatencyHistogramPopulated)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    rig.pt.mapBasePage(0x4000, 0x8000);
    walker.requestWalk(rig.pt, 0x4000, [](const Translation &) {});
    rig.ev.runAll();
    EXPECT_EQ(walker.stats().latency.samples(), 1u);
    EXPECT_GT(walker.stats().latency.mean(), 0.0);
}

}  // namespace
}  // namespace mosaic
