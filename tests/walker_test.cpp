/** @file Unit tests for the highly-threaded page-table walker. */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "dram/dram.h"
#include "engine/event_queue.h"
#include "vm/page_table.h"
#include "vm/walker.h"

namespace mosaic {
namespace {

struct WalkRig
{
    EventQueue ev;
    DramModel dram;
    CacheHierarchy caches;
    RegionPtNodeAllocator alloc{1ull << 32, 64ull << 20};
    PageTable pt{0, alloc};

    explicit WalkRig()
        : dram(ev, DramConfig{}),
          caches(ev, dram, CacheHierarchyConfig{})
    {
    }

    PageTableWalker
    makeWalker(WalkerConfig cfg = WalkerConfig{})
    {
        return PageTableWalker(ev, caches, cfg);
    }
};

TEST(WalkerTest, WalkResolvesMappedPage)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    rig.pt.mapBasePage(0x4000, 0x8000);
    Translation result;
    bool done = false;
    walker.requestWalk(rig.pt, 0x4000, [&](const Translation &t) {
        result = t;
        done = true;
    });
    rig.ev.runAll();
    ASSERT_TRUE(done);
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.physAddr, 0x8000u);
    EXPECT_EQ(walker.stats().walks, 1u);
    EXPECT_EQ(walker.stats().faults, 0u);
}

TEST(WalkerTest, WalkTakesFourMemoryAccesses)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    rig.pt.mapBasePage(0x4000, 0x8000);
    const std::uint64_t reads_before = rig.dram.stats().reads;
    bool done = false;
    walker.requestWalk(rig.pt, 0x4000, [&](const Translation &) {
        done = true;
    });
    rig.ev.runAll();
    ASSERT_TRUE(done);
    EXPECT_EQ(rig.dram.stats().reads - reads_before, 4u);
}

TEST(WalkerTest, WalkOfUnmappedPageFaults)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    Translation result;
    result.valid = true;
    walker.requestWalk(rig.pt, 0xDEAD000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    EXPECT_FALSE(result.valid);
    EXPECT_EQ(walker.stats().faults, 1u);
}

TEST(WalkerTest, CoalescedRegionYieldsLargeTranslation)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    const Addr va = 9ull << kLargePageBits;
    const Addr pa = 11ull << kLargePageBits;
    for (std::uint64_t i = 0; i < kBasePagesPerLargePage; ++i)
        rig.pt.mapBasePage(va + i * kBasePageSize, pa + i * kBasePageSize);
    rig.pt.coalesce(va);

    Translation result;
    walker.requestWalk(rig.pt, va + 0x5000, [&](const Translation &t) {
        result = t;
    });
    rig.ev.runAll();
    ASSERT_TRUE(result.valid);
    EXPECT_EQ(result.size, PageSize::Large);
    EXPECT_EQ(walker.stats().largeResults, 1u);
}

TEST(WalkerTest, ConcurrencyCapQueuesExcessWalks)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.maxConcurrentWalks = 4;
    auto walker = rig.makeWalker(cfg);
    for (std::uint64_t i = 0; i < 16; ++i)
        rig.pt.mapBasePage(0x100000 + i * kBasePageSize, 0x200000 + i * 4096);

    int completions = 0;
    for (std::uint64_t i = 0; i < 16; ++i) {
        walker.requestWalk(rig.pt, 0x100000 + i * kBasePageSize,
                           [&](const Translation &t) {
            EXPECT_TRUE(t.valid);
            ++completions;
        });
    }
    EXPECT_LE(walker.activeWalks(), 4u);
    EXPECT_EQ(walker.queuedWalks(), 12u);
    EXPECT_EQ(walker.stats().queued, 12u);
    rig.ev.runAll();
    EXPECT_EQ(completions, 16);
    EXPECT_EQ(walker.activeWalks(), 0u);
}

TEST(WalkerTest, PageWalkCacheShortensRepeatWalks)
{
    WalkRig rig;
    WalkerConfig cfg;
    cfg.usePageWalkCache = true;
    auto walker = rig.makeWalker(cfg);
    // Two pages under the same L4 node: upper levels shared.
    rig.pt.mapBasePage(0x10000, 0x20000);
    rig.pt.mapBasePage(0x11000, 0x21000);

    bool first = false;
    walker.requestWalk(rig.pt, 0x10000,
                       [&](const Translation &) { first = true; });
    rig.ev.runAll();
    ASSERT_TRUE(first);
    const std::uint64_t reads_after_first = rig.dram.stats().reads;

    bool second = false;
    walker.requestWalk(rig.pt, 0x11000,
                       [&](const Translation &) { second = true; });
    rig.ev.runAll();
    ASSERT_TRUE(second);
    // Upper three levels hit the PWC; only the leaf PTE goes to memory.
    EXPECT_EQ(rig.dram.stats().reads - reads_after_first, 1u);
    EXPECT_GE(walker.stats().pwcHits, 3u);
}

TEST(WalkerTest, LatencyHistogramPopulated)
{
    WalkRig rig;
    auto walker = rig.makeWalker();
    rig.pt.mapBasePage(0x4000, 0x8000);
    walker.requestWalk(rig.pt, 0x4000, [](const Translation &) {});
    rig.ev.runAll();
    EXPECT_EQ(walker.stats().latency.samples(), 1u);
    EXPECT_GT(walker.stats().latency.mean(), 0.0);
}

}  // namespace
}  // namespace mosaic
