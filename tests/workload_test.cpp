/** @file Unit tests for the synthetic workload library. */

#include <gtest/gtest.h>

#include <set>

#include "workload/access_pattern.h"
#include "workload/apps.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace mosaic {
namespace {

TEST(AppCatalogTest, HasTwentySevenApplications)
{
    EXPECT_EQ(appCatalog().size(), 27u);
    std::set<std::string> names;
    for (const AppParams &app : appCatalog())
        names.insert(app.name);
    EXPECT_EQ(names.size(), 27u);  // all distinct
}

TEST(AppCatalogTest, WorkingSetsMatchPaperRange)
{
    std::uint64_t total = 0;
    for (const AppParams &app : appCatalog()) {
        const std::uint64_t ws = app.workingSetBytes();
        EXPECT_GE(ws, 8ull << 20) << app.name;
        EXPECT_LE(ws, 420ull << 20) << app.name;
        total += ws;
    }
    // Paper: mean working set ~81.5MB; ours within [50, 110] MB.
    const double mean_mb =
        double(total) / double(appCatalog().size()) / double(1 << 20);
    EXPECT_GT(mean_mb, 50.0);
    EXPECT_LT(mean_mb, 110.0);
}

TEST(AppCatalogTest, LookupByNameWorks)
{
    EXPECT_EQ(appByName("HISTO").name, "HISTO");
    EXPECT_EQ(appByName("LBM").name, "LBM");
}

TEST(AppCatalogTest, EnMasseAllocation)
{
    // Every application allocates many buffers at once (en masse).
    for (const AppParams &app : appCatalog())
        EXPECT_GE(app.bufferSizes.size(), 5u) << app.name;
}

TEST(MakeBuffersTest, DeterministicAndSized)
{
    const auto a = makeBuffers(1, 64 << 20, 2, 0.9, 10);
    const auto b = makeBuffers(1, 64 << 20, 2, 0.9, 10);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 12u);
    std::uint64_t total = 0;
    for (const std::uint64_t s : a) {
        EXPECT_EQ(s % kBasePageSize, 0u);
        total += s;
    }
    EXPECT_NEAR(double(total), double(64 << 20), 0.3 * double(64 << 20));
}

TEST(AppLayoutTest, BuffersAreLargePageAligned)
{
    const AppParams &app = appByName("SGEMM");
    AppLayout layout(app, 1ull << 40);
    for (const auto &buf : layout.buffers())
        EXPECT_TRUE(isLargePageAligned(buf.va));
}

TEST(AppLayoutTest, TouchedOffsetMapsIntoBuffers)
{
    const AppParams &app = appByName("SGEMM");
    AppLayout layout(app, 1ull << 40);
    for (std::uint64_t off = 0; off < layout.totalTouched();
         off += layout.totalTouched() / 97 + 1) {
        const Addr va = layout.touchedOffsetToVa(off);
        bool inside = false;
        for (const auto &buf : layout.buffers())
            inside = inside || (va >= buf.va && va < buf.va + buf.bytes);
        ASSERT_TRUE(inside) << "offset " << off;
    }
}

TEST(AppLayoutTest, TouchedFractionLimitsCoverage)
{
    AppParams app = appByName("LBM");  // touchedFraction 0.90
    AppLayout layout(app, 1ull << 40);
    EXPECT_LT(layout.totalTouched(), app.workingSetBytes());
    EXPECT_GT(layout.totalTouched(), app.workingSetBytes() / 2);
}

TEST(ScaledTest, KeepsChunkStructure)
{
    const AppParams scaled = appByName("LBM").scaled(0.1);
    // Big buffers must not shrink below two large pages.
    std::uint64_t max_buf = 0;
    for (const std::uint64_t s : scaled.bufferSizes)
        max_buf = std::max(max_buf, s);
    EXPECT_GE(max_buf, 2 * kLargePageSize);
    EXPECT_LT(scaled.workingSetBytes(),
              appByName("LBM").workingSetBytes());
}

TEST(WarpStreamTest, DeterministicForSameSeed)
{
    const AppParams &app = appByName("BFS");
    AppLayout layout(app, 1ull << 40);
    SyntheticWarpStream a(app, layout, 0, 32, 7);
    SyntheticWarpStream b(app, layout, 0, 32, 7);
    WarpInstr ia, ib;
    for (int i = 0; i < 500; ++i) {
        ASSERT_EQ(a.next(ia), b.next(ib));
        ASSERT_EQ(ia.isMemory, ib.isMemory);
        if (ia.isMemory) {
            ASSERT_EQ(ia.numLines, ib.numLines);
            for (unsigned l = 0; l < ia.numLines; ++l)
                ASSERT_EQ(ia.lineAddrs[l], ib.lineAddrs[l]);
        }
    }
}

TEST(WarpStreamTest, RespectsInstructionBudget)
{
    AppParams app = appByName("SCP");
    app.instrPerWarp = 100;
    AppLayout layout(app, 1ull << 40);
    SyntheticWarpStream stream(app, layout, 0, 32, 1);
    WarpInstr instr;
    int count = 0;
    while (stream.next(instr))
        ++count;
    EXPECT_EQ(count, 100);
    EXPECT_FALSE(stream.next(instr));  // stays exhausted
}

TEST(WarpStreamTest, MemoryComputeMixMatchesParams)
{
    AppParams app = appByName("SCP");  // computePerMem = 3
    app.instrPerWarp = 4000;
    AppLayout layout(app, 1ull << 40);
    SyntheticWarpStream stream(app, layout, 0, 32, 1);
    WarpInstr instr;
    int mem = 0, total = 0;
    while (stream.next(instr)) {
        ++total;
        mem += instr.isMemory ? 1 : 0;
    }
    EXPECT_NEAR(double(mem) / total, 1.0 / (1 + app.computePerMem), 0.01);
}

TEST(WarpStreamTest, AddressesStayInsideLayout)
{
    const AppParams &app = appByName("NW");
    AppLayout layout(app, 1ull << 40);
    SyntheticWarpStream stream(app, layout, 3, 32, 11);
    WarpInstr instr;
    while (stream.next(instr)) {
        if (!instr.isMemory)
            continue;
        for (unsigned l = 0; l < instr.numLines; ++l) {
            ASSERT_GE(instr.lineAddrs[l], layout.vaBase());
            ASSERT_LT(instr.lineAddrs[l], layout.vaEnd());
        }
    }
}

TEST(AppLayoutTest, RebaseBufferMovesAccesses)
{
    AppParams app = appByName("SCP");
    AppLayout layout(app, 1ull << 40);
    const Addr old_va = layout.buffers()[0].va;
    const Addr new_va = 9ull << 40;
    layout.rebaseBuffer(0, new_va);
    EXPECT_EQ(layout.buffers()[0].va, new_va);
    // Offset 0 of the touched space now resolves into the new region.
    EXPECT_EQ(layout.touchedOffsetToVa(0), new_va);
    EXPECT_NE(layout.touchedOffsetToVa(0), old_va);
    // Total touched bytes are unchanged (same sizes).
    EXPECT_GT(layout.totalTouched(), 0u);
}

TEST(WorkloadTest, HomogeneousHasIdenticalCopies)
{
    const Workload w = homogeneousWorkload("HS", 3);
    EXPECT_EQ(w.apps.size(), 3u);
    EXPECT_EQ(w.apps[0].name, "HS");
    EXPECT_EQ(w.apps[1].workingSetBytes(), w.apps[0].workingSetBytes());
}

TEST(WorkloadTest, HeterogeneousPicksDistinctApps)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Workload w = heterogeneousWorkload(5, seed);
        std::set<std::string> names;
        for (const AppParams &app : w.apps)
            names.insert(app.name);
        EXPECT_EQ(names.size(), 5u) << "seed " << seed;
    }
}

TEST(WorkloadTest, SuitesHaveDocumentedSizes)
{
    EXPECT_EQ(homogeneousSuite(2).size(), 27u);
    EXPECT_EQ(heterogeneousSuite(3, 25, 42).size(), 25u);
}

TEST(MetricsTest, WeightedSpeedup)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1.0, 2.0}, {2.0, 2.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedSpeedup({}, {}), 0.0);
}

TEST(MetricsTest, Means)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
}

}  // namespace
}  // namespace mosaic
