/**
 * @file
 * Deterministic randomized stress fuzzer for the memory managers.
 *
 * Drives randomized alloc/free/touch/oversubscribe/multi-app schedules
 * against any of the three memory managers with the shadow-model
 * invariant checker (src/check/) verifying after every operation. The
 * harness is deterministic from its seed: the whole schedule is
 * generated up front from a seeded Rng, so any failure reproduces with
 * `mosaic_fuzz --seed N` and the failing schedule can be written out,
 * minimized, and replayed byte-for-byte (`--replay FILE`).
 *
 * Usage:
 *   mosaic_fuzz --seed N [--ops N] [--manager mosaic|gpummu|largeonly]
 *               [--oversubscribe] [--apps N] [--out FILE]
 *   mosaic_fuzz --smoke [--seed N] [--ops N]    # 3 managers x oversub
 *   mosaic_fuzz --replay FILE                   # replay a schedule
 *
 * Exit status: 0 = all invariants held, 1 = violation found (the
 * failing schedule is minimized and printed/written), 2 = usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "check/invariant_checker.h"
#include "ckpt/serde.h"
#include "common/parse_num.h"
#include "common/rng.h"
#include "dram/dram.h"
#include "engine/event_queue.h"
#include "engine/sharded_engine.h"
#include "mm/gpu_mmu_manager.h"
#include "mm/large_only_manager.h"
#include "mm/mosaic_manager.h"
#include "vm/translation.h"
#include "vm/walker.h"

using namespace mosaic;

namespace {

enum class Op : unsigned {
    Reserve = 0,   ///< reserve a region in a free slot
    Back = 1,      ///< demand-back one page of a reserved region
    Touch = 2,     ///< translate one page through the TLBs (fill path)
    ReleaseAll = 3,///< release a whole reserved region
    ReleaseSlice = 4, ///< release a random slice (fragmentation)
};

/** One schedule step; fields are reinterpreted per opcode. */
struct FuzzOp
{
    Op op = Op::Reserve;
    unsigned app = 0;
    unsigned slot = 0;   ///< region slot index within the app
    unsigned pages = 1;  ///< Reserve: region size; ReleaseSlice: length
    unsigned page = 0;   ///< Back/Touch/ReleaseSlice: page offset
};

/** Everything that parameterizes one fuzz run (all seed-derived). */
struct FuzzConfig
{
    std::string manager = "mosaic";
    bool oversubscribe = false;
    unsigned apps = 2;
    bool useBulkCopy = false;
    unsigned interleave = 0;  ///< ChannelInterleave as an int
    unsigned coalesceThreshold = 0;
    /** Page-size hierarchy under fuzz (default: the classic pair). */
    PageSizeHierarchy sizes;
    /** Enable CoLT coalesced base-TLB entries on the fuzz TLBs. */
    bool colt = false;
    std::vector<FuzzOp> ops;
};

constexpr unsigned kSlotsPerApp = 8;
constexpr Addr kSlotSpacing = 16ull << 20;  // 16MB between region slots
constexpr unsigned kMaxRegionPages = 1536;  // up to 3 chunks

Addr
slotVa(unsigned app, unsigned slot)
{
    return ((static_cast<Addr>(app) + 1) << 32) + slot * kSlotSpacing;
}

std::unique_ptr<MemoryManager>
makeManager(const FuzzConfig &cfg, Addr poolBase, std::uint64_t poolBytes,
            MosaicConfig &mosaicCfg)
{
    if (cfg.manager == "mosaic")
        return std::make_unique<MosaicManager>(poolBase, poolBytes,
                                               mosaicCfg);
    if (cfg.manager == "largeonly")
        return std::make_unique<LargeOnlyManager>(poolBase, poolBytes);
    return std::make_unique<GpuMmuManager>(poolBase, poolBytes);
}

/** Result of executing one schedule. */
struct RunResult
{
    bool failed = false;
    std::size_t failOp = 0;       ///< index of the op that tripped
    std::uint64_t violations = 0;
    std::vector<std::string> reports;
};

/** Checker config shared by every fuzz system (verify every mutation). */
InvariantChecker::Config
fuzzCheckerConfig()
{
    InvariantChecker::Config c;
    c.fullSweepEvery = 1;
    c.abortOnViolation = false;
    return c;
}

/**
 * One complete fuzzable system: engine, DRAM, caches, walker,
 * translation, manager, page tables, and a shadow checker, built the
 * same way for a fresh run and for a checkpoint-restore twin. Members
 * are heap-held (or the struct itself is) so the cross-references the
 * components take at construction stay valid for the system's life.
 */
struct FuzzSystem
{
    CacheHierarchyConfig cacheCfg;
    std::unique_ptr<ShardedEngine> engine;
    EventQueue serialEvents;
    DramConfig dramCfg;
    std::unique_ptr<DramModel> dram;
    std::unique_ptr<CacheHierarchy> caches;
    std::unique_ptr<PageTableWalker> walker;
    TranslationConfig trCfg;
    std::unique_ptr<TranslationService> translation;
    MosaicConfig mosaicCfg;
    std::unique_ptr<MemoryManager> manager;
    InvariantChecker checker;
    std::unique_ptr<RegionPtNodeAllocator> ptAlloc;
    std::vector<std::unique_ptr<PageTable>> tables;

    FuzzSystem(const FuzzConfig &cfg, unsigned shards)
        : checker(fuzzCheckerConfig())
    {
        cacheCfg.numSms = 2;
        if (shards > 0)
            engine = std::make_unique<ShardedEngine>(cacheCfg.numSms, shards);
        LaneRouter *const router = engine.get();

        dramCfg.channelInterleave =
            static_cast<ChannelInterleave>(cfg.interleave);
        dramCfg.capacityBytes = 256ull << 20;
        dram = std::make_unique<DramModel>(events(), dramCfg);

        caches = std::make_unique<CacheHierarchy>(events(), *dram, cacheCfg,
                                                  nullptr, router);
        WalkerConfig walker_cfg;
        walker = std::make_unique<PageTableWalker>(events(), *caches,
                                                   walker_cfg);
        trCfg.sizes = cfg.sizes;
        trCfg.colt = cfg.colt;
        translation = std::make_unique<TranslationService>(
            events(), *walker, cacheCfg.numSms, trCfg, nullptr, nullptr,
            router);
        if (engine != nullptr) {
            engine->addBarrierHook([t = translation.get()] {
                t->flushDeferredCheckHooks();
            });
        }

        // Oversubscription: the pool holds far fewer frames than the
        // schedule's demand, so OOM, reclaim, compaction, and the
        // emergency failsafe all get exercised.
        const std::uint64_t pool_bytes =
            cfg.oversubscribe ? (8ull << 20) : (64ull << 20);
        mosaicCfg.cac.useBulkCopy = cfg.useBulkCopy;
        mosaicCfg.coalesceResidentThreshold = cfg.coalesceThreshold;
        mosaicCfg.sizes = cfg.sizes;
        manager = makeManager(cfg, 0, pool_bytes, mosaicCfg);

        checker.attachManager(manager.get());
        checker.attachTranslation(translation.get());
        checker.attachDram(dram.get());
        if (cfg.manager == "mosaic") {
            auto *mm = static_cast<MosaicManager *>(manager.get());
            checker.attachMosaicState(&mm->state());
            checker.attachCacConfig(&mosaicCfg.cac);
        }
        translation->setChecker(&checker);

        ptAlloc = std::make_unique<RegionPtNodeAllocator>(
            dramCfg.capacityBytes - (16ull << 20), 16ull << 20);
        for (unsigned a = 0; a < cfg.apps; ++a) {
            tables.push_back(std::make_unique<PageTable>(
                static_cast<AppId>(a), *ptAlloc, cfg.sizes));
            checker.observePageTable(*tables.back());
            manager->registerApp(static_cast<AppId>(a), *tables.back());
            translation->registerApp(static_cast<AppId>(a), *tables.back());
        }
        ManagerEnv env;
        env.events = &events();
        env.dram = dram.get();
        env.translation = translation.get();
        env.checker = &checker;
        manager->setEnv(env);
    }

    EventQueue &
    events()
    {
        return engine ? engine->hubQueue() : serialEvents;
    }

    void
    drain()
    {
        if (engine != nullptr) {
            engine->drain();
            return;
        }
        while (serialEvents.runOne()) {
        }
    }

    /** Serializes the quiesced system (canonical component order). */
    void
    saveState(ckpt::Writer &w)
    {
        w.boolean(engine != nullptr);
        if (engine != nullptr) {
            engine->saveState(w);
        } else {
            const EventQueue::Clock c = serialEvents.saveClock();
            w.u64(c.now);
            w.u64(c.nextSeq);
            w.u64(c.executed);
        }
        ptAlloc->saveState(w);
        w.u64(tables.size());
        for (const auto &t : tables)
            t->saveState(w);
        manager->saveState(w);
        translation->saveState(w);
        walker->saveState(w);
        caches->saveState(w);
        dram->saveState(w);
    }

    /** Mirror of saveState() into a freshly constructed system. */
    void
    loadState(ckpt::Reader &r)
    {
        const bool sharded = r.boolean();
        if (r.ok() && sharded != (engine != nullptr)) {
            r.fail("engine mode mismatch");
            return;
        }
        if (engine != nullptr) {
            engine->loadState(r);
        } else {
            EventQueue::Clock c;
            c.now = r.u64();
            c.nextSeq = r.u64();
            c.executed = r.u64();
            if (r.ok())
                serialEvents.restoreClock(c);
        }
        ptAlloc->loadState(r);
        const std::uint64_t n = r.u64();
        if (r.ok() && n != tables.size()) {
            r.fail("page-table count mismatch");
            return;
        }
        for (const auto &t : tables) {
            t->loadState(r);
            if (!r.ok())
                return;
        }
        manager->loadState(r);
        translation->loadState(r);
        walker->loadState(r);
        caches->loadState(r);
        dram->loadState(r);
        if (r.ok())
            checker.seedAuditedViolations(
                manager->stats().softGuaranteeViolations);
    }
};

/**
 * Executes @p cfg's schedule from scratch and verifies every invariant
 * after every operation. Deterministic: same config, same outcome.
 * @p shards > 0 builds the services over a ShardedEngine (DESIGN.md
 * §12) so the fuzzer exercises the routed translation/cache paths; the
 * invariant verdicts are unchanged because every op fully drains.
 * @p checkpointEvery > 0 additionally round-trips the whole system
 * through the checkpoint serializer every N ops: serialize, restore
 * into a freshly built twin, verify the twin's reseeded shadow checker,
 * check save->restore->save byte stability, and continue the schedule
 * on the twin.
 */
RunResult
runSchedule(const FuzzConfig &cfg, unsigned shards = 0,
            std::size_t checkpointEvery = 0)
{
    auto sys = std::make_unique<FuzzSystem>(cfg, shards);

    // Reserved pages per (app, slot); 0 = slot free. Ops that do not
    // apply to the current state are skipped (keeps minimized schedules
    // replayable without re-validation).
    std::vector<std::vector<unsigned>> reserved(
        cfg.apps, std::vector<unsigned>(kSlotsPerApp, 0));

    RunResult result;

    for (std::size_t i = 0; i < cfg.ops.size(); ++i) {
        const FuzzOp &op = cfg.ops[i];
        const unsigned app = op.app % cfg.apps;
        const unsigned slot = op.slot % kSlotsPerApp;
        const Addr base = slotVa(app, slot);
        unsigned &pages = reserved[app][slot];
        const AppId id = static_cast<AppId>(app);

        switch (op.op) {
        case Op::Reserve:
            if (pages != 0)
                break;
            pages = 1 + op.pages % kMaxRegionPages;
            sys->manager->reserveRegion(id, base,
                                        static_cast<std::uint64_t>(pages) *
                                            kBasePageSize);
            break;
        case Op::Back:
            if (pages == 0)
                break;
            sys->manager->backPage(id,
                                   base + (op.page % pages) * kBasePageSize);
            break;
        case Op::Touch: {
            if (pages == 0)
                break;
            const Addr va = base + (op.page % pages) * kBasePageSize;
            const SmId sm = static_cast<SmId>(op.page % 2);
            Translation out;
            sys->translation->translate(
                sm, *sys->tables[app], va,
                [&out](const Translation &t) { out = t; });
            sys->drain();
            if (!out.valid) {
                // Far-fault: commit physical memory, then refill.
                if (sys->manager->backPage(id, va)) {
                    sys->translation->translate(sm, *sys->tables[app], va,
                                                [](const Translation &) {});
                    sys->drain();
                }
            }
            break;
        }
        case Op::ReleaseAll:
            if (pages == 0)
                break;
            sys->manager->releaseRegion(id, base,
                                        static_cast<std::uint64_t>(pages) *
                                            kBasePageSize);
            pages = 0;
            break;
        case Op::ReleaseSlice: {
            if (pages < 2)
                break;
            const unsigned start = op.page % (pages - 1);
            const unsigned len = 1 + op.pages % (pages - start);
            sys->manager->releaseRegion(id, base + start * kBasePageSize,
                                        static_cast<std::uint64_t>(len) *
                                            kBasePageSize);
            // The slot stays reserved: later Back/Touch ops on released
            // pages exercise the re-backing (loose allocation) paths.
            break;
        }
        }
        sys->drain();
        sys->checker.verifyAll();
        if (sys->checker.violationCount() > result.violations) {
            result.failed = true;
            result.failOp = i;
            result.violations = sys->checker.violationCount();
            result.reports = sys->checker.reports();
            return result;  // stop at the first failing op
        }

        if (checkpointEvery > 0 && (i + 1) % checkpointEvery == 0) {
            // Round-trip the quiesced system through the checkpoint
            // serializer into a fresh twin and keep running on the
            // twin: any state the serializer loses shows up as a
            // checker violation (or a divergent verdict) downstream.
            ckpt::Writer w;
            sys->saveState(w);
            auto fresh = std::make_unique<FuzzSystem>(cfg, shards);
            ckpt::Reader r(w.buffer());
            fresh->loadState(r);
            std::string err;
            if (!r.ok()) {
                err = "checkpoint round-trip: " + r.error();
            } else if (!r.atEnd()) {
                err = "checkpoint round-trip: trailing bytes";
            } else {
                ckpt::Writer w2;
                fresh->saveState(w2);
                if (w2.buffer() != w.buffer())
                    err = "checkpoint round-trip: save->restore->save "
                          "bytes differ";
            }
            if (!err.empty()) {
                result.failed = true;
                result.failOp = i;
                result.violations = 1;
                result.reports = {err};
                return result;
            }
            fresh->checker.verifyAll();
            if (fresh->checker.violationCount() > 0) {
                result.failed = true;
                result.failOp = i;
                result.violations = fresh->checker.violationCount();
                result.reports = fresh->checker.reports();
                return result;
            }
            sys = std::move(fresh);
        }
    }

    // Teardown: release everything, then the shadow must be empty.
    for (unsigned a = 0; a < cfg.apps; ++a) {
        for (unsigned s = 0; s < kSlotsPerApp; ++s) {
            if (reserved[a][s] != 0) {
                sys->manager->releaseRegion(
                    static_cast<AppId>(a), slotVa(a, s),
                    static_cast<std::uint64_t>(reserved[a][s]) *
                        kBasePageSize);
            }
        }
    }
    sys->drain();
    sys->checker.verifyAll();
    if (sys->checker.violationCount() > 0) {
        result.failed = true;
        result.failOp = cfg.ops.size();
        result.violations = sys->checker.violationCount();
        result.reports = sys->checker.reports();
    }
    return result;
}

/** Generates a schedule (and config bits) deterministically from a seed. */
FuzzConfig
generate(std::uint64_t seed, std::size_t numOps, const std::string &manager,
         bool oversubscribe, unsigned apps,
         const PageSizeHierarchy &sizes = {}, bool colt = false)
{
    FuzzConfig cfg;
    cfg.manager = manager;
    cfg.oversubscribe = oversubscribe;
    cfg.apps = apps;
    cfg.sizes = sizes;
    cfg.colt = colt;
    Rng rng(seed);
    cfg.useBulkCopy = rng.chance(0.5);
    cfg.interleave = static_cast<unsigned>(rng.below(3));
    cfg.coalesceThreshold = rng.chance(0.25) ? 256 : 0;
    if (sizes.numLevels() > 2) {
        // Tiering knobs come from a *separate* hash of the seed so the
        // main stream above -- and therefore every default-pair
        // schedule -- stays byte-identical with or without --sizes.
        Rng trident_rng(seed * 0x9E3779B97F4A7C15ull + 0x632BE59Bull);
        // Residency-gated mid promotion vs promote-on-full: both
        // branches of InPlaceCoalescer::tryCoalesceRun get coverage.
        cfg.coalesceThreshold = trident_rng.chance(0.5) ? 64 : 0;
    }
    cfg.ops.reserve(numOps);
    for (std::size_t i = 0; i < numOps; ++i) {
        FuzzOp op;
        // Weighted opcode mix: touching/backing dominates real usage.
        const std::uint64_t roll = rng.below(100);
        if (roll < 15)
            op.op = Op::Reserve;
        else if (roll < 45)
            op.op = Op::Back;
        else if (roll < 75)
            op.op = Op::Touch;
        else if (roll < 85)
            op.op = Op::ReleaseAll;
        else
            op.op = Op::ReleaseSlice;
        op.app = static_cast<unsigned>(rng.below(apps));
        op.slot = static_cast<unsigned>(rng.below(kSlotsPerApp));
        op.pages = static_cast<unsigned>(rng.below(kMaxRegionPages)) + 1;
        op.page = static_cast<unsigned>(rng.below(kMaxRegionPages));
        cfg.ops.push_back(op);
    }
    return cfg;
}

/**
 * Greedy schedule minimization: repeatedly drop chunks (halving window
 * sizes down to single ops) while the failure persists.
 */
FuzzConfig
minimize(const FuzzConfig &failing, unsigned shards,
         std::size_t checkpointEvery = 0)
{
    FuzzConfig best = failing;
    for (std::size_t window = best.ops.size() / 2; window >= 1;
         window /= 2) {
        bool removed_any = true;
        while (removed_any) {
            removed_any = false;
            for (std::size_t start = 0; start + window <= best.ops.size();
                 start += window) {
                FuzzConfig trial = best;
                trial.ops.erase(trial.ops.begin() + start,
                                trial.ops.begin() + start + window);
                if (runSchedule(trial, shards, checkpointEvery).failed) {
                    best = std::move(trial);
                    removed_any = true;
                    break;
                }
            }
        }
        if (window == 1)
            break;
    }
    return best;
}

void
writeSchedule(const FuzzConfig &cfg, std::ostream &os)
{
    os << "mosaic_fuzz v1\n";
    os << "manager=" << cfg.manager << " oversub=" << cfg.oversubscribe
       << " apps=" << cfg.apps << " bulkcopy=" << cfg.useBulkCopy
       << " interleave=" << cfg.interleave
       << " threshold=" << cfg.coalesceThreshold;
    // Emitted only when non-default so pre-existing corpus files (and
    // the determinism smoke's dump comparisons) keep their exact bytes.
    if (!cfg.sizes.isDefaultPair())
        os << " sizes=" << cfg.sizes.toString();
    if (cfg.colt)
        os << " colt=1";
    os << "\n";
    for (const FuzzOp &op : cfg.ops) {
        os << static_cast<unsigned>(op.op) << " " << op.app << " "
           << op.slot << " " << op.pages << " " << op.page << "\n";
    }
}

bool
readSchedule(const std::string &path, FuzzConfig &cfg)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "mosaic_fuzz: cannot open %s\n", path.c_str());
        return false;
    }
    std::string line;
    if (!std::getline(in, line) || line != "mosaic_fuzz v1") {
        std::fprintf(stderr, "mosaic_fuzz: %s: bad header\n", path.c_str());
        return false;
    }
    if (!std::getline(in, line))
        return false;
    {
        std::istringstream hs(line);
        std::string tok;
        while (hs >> tok) {
            const auto eq = tok.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = tok.substr(0, eq);
            const std::string val = tok.substr(eq + 1);
            if (key == "manager")
                cfg.manager = val;
            else if (key == "oversub")
                cfg.oversubscribe = val != "0";
            else if (key == "apps" || key == "interleave" ||
                     key == "threshold") {
                std::uint64_t v = 0;
                if (!parseU64(val.c_str(), &v) || v > 1u << 20) {
                    std::fprintf(stderr,
                                 "mosaic_fuzz: %s: bad %s= value '%s'\n",
                                 path.c_str(), key.c_str(), val.c_str());
                    return false;
                }
                if (key == "apps")
                    cfg.apps = static_cast<unsigned>(v);
                else if (key == "interleave")
                    cfg.interleave = static_cast<unsigned>(v);
                else
                    cfg.coalesceThreshold = static_cast<unsigned>(v);
            } else if (key == "bulkcopy")
                cfg.useBulkCopy = val != "0";
            else if (key == "sizes") {
                if (!PageSizeHierarchy::parse(val, cfg.sizes)) {
                    std::fprintf(stderr,
                                 "mosaic_fuzz: %s: bad sizes= spec\n",
                                 path.c_str());
                    return false;
                }
            } else if (key == "colt")
                cfg.colt = val != "0";
        }
    }
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        unsigned op = 0;
        FuzzOp f;
        if (!(ls >> op >> f.app >> f.slot >> f.pages >> f.page)) {
            std::fprintf(stderr, "mosaic_fuzz: %s: bad op line\n",
                         path.c_str());
            return false;
        }
        f.op = static_cast<Op>(op);
        cfg.ops.push_back(f);
    }
    return true;
}

/** Runs one config; on failure minimizes, reports, optionally saves. */
int
runAndReport(FuzzConfig cfg, std::uint64_t seed, const std::string &outPath,
             unsigned shards = 0, std::size_t checkpointEvery = 0)
{
    RunResult r = runSchedule(cfg, shards, checkpointEvery);
    if (!r.failed) {
        std::printf("mosaic_fuzz: OK manager=%s oversub=%d apps=%u "
                    "ops=%zu seed=%llu\n",
                    cfg.manager.c_str(), cfg.oversubscribe ? 1 : 0,
                    cfg.apps, cfg.ops.size(),
                    static_cast<unsigned long long>(seed));
        if (!outPath.empty()) {
            // Dump the (passing) generated schedule too: corpus capture
            // and the determinism smoke test compare these dumps.
            std::ofstream out(outPath);
            writeSchedule(cfg, out);
        }
        return 0;
    }

    std::fprintf(stderr,
                 "mosaic_fuzz: FAILURE manager=%s oversub=%d apps=%u "
                 "seed=%llu at op %zu (%llu violations)\n",
                 cfg.manager.c_str(), cfg.oversubscribe ? 1 : 0, cfg.apps,
                 static_cast<unsigned long long>(seed), r.failOp,
                 static_cast<unsigned long long>(r.violations));
    for (const std::string &report : r.reports)
        std::fprintf(stderr, "  %s\n", report.c_str());

    std::fprintf(stderr, "mosaic_fuzz: minimizing %zu ops...\n",
                 cfg.ops.size());
    const FuzzConfig minimal = minimize(cfg, shards, checkpointEvery);
    std::fprintf(stderr, "mosaic_fuzz: minimized to %zu ops:\n",
                 minimal.ops.size());
    std::ostringstream dump;
    writeSchedule(minimal, dump);
    std::fprintf(stderr, "%s", dump.str().c_str());
    if (!outPath.empty()) {
        std::ofstream out(outPath);
        writeSchedule(minimal, out);
        std::fprintf(stderr, "mosaic_fuzz: schedule written to %s\n",
                     outPath.c_str());
    }
    return 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: mosaic_fuzz [--seed N] [--ops N] [--apps N]\n"
        "                   [--manager mosaic|gpummu|largeonly]\n"
        "                   [--oversubscribe] [--shards N] [--out FILE]\n"
        "                   [--sizes LIST] [--colt]\n"
        "                   [--checkpoint-every N]\n"
        "       mosaic_fuzz --smoke [--seed N] [--ops N] [--shards N]\n"
        "       mosaic_fuzz --replay FILE [--shards N]\n"
        "\n"
        "--shards N runs the services over the sharded engine with N\n"
        "worker threads (0 = serial); invariant verdicts are identical.\n"
        "--sizes LIST fuzzes a custom page-size hierarchy (smallest\n"
        "first, e.g. 4K,64K,2M); tiering knobs then derive from a\n"
        "separate hash of the seed, so default-pair schedules are\n"
        "byte-identical with or without the flag. --colt enables\n"
        "coalesced base-TLB entries. Replay files carry both settings\n"
        "in their header.\n"
        "--checkpoint-every N serializes the whole system every N ops,\n"
        "restores it into a freshly built twin, verifies the twin with\n"
        "its own shadow checker (plus save->restore->save byte\n"
        "stability), and continues the schedule on the twin; invariant\n"
        "verdicts are identical to an uncheckpointed run.\n");
    return 2;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    std::size_t ops = 2000;
    unsigned apps = 2;
    unsigned shards = 0;
    std::string manager = "mosaic";
    bool oversubscribe = false;
    bool smoke = false;
    std::string replay_path;
    std::string out_path;
    PageSizeHierarchy sizes;
    bool colt = false;
    std::size_t ckpt_every = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mosaic_fuzz: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        // Checked parse: garbage or out-of-range values are usage
        // errors, not uncaught std::stoul exceptions.
        auto u64 = [&](std::uint64_t lo, std::uint64_t hi) -> std::uint64_t {
            std::uint64_t v = 0;
            if (!parseFlagU64(arg.c_str(), next(), lo, hi, &v))
                std::exit(usage());
            return v;
        };
        if (arg == "--seed")
            seed = u64(0, UINT64_MAX);
        else if (arg == "--ops")
            ops = static_cast<std::size_t>(u64(0, 1u << 24));
        else if (arg == "--apps")
            apps = static_cast<unsigned>(u64(1, 8));
        else if (arg == "--shards")
            shards = static_cast<unsigned>(u64(0, 256));
        else if (arg == "--manager")
            manager = next();
        else if (arg == "--oversubscribe")
            oversubscribe = true;
        else if (arg == "--smoke")
            smoke = true;
        else if (arg == "--replay")
            replay_path = next();
        else if (arg == "--out")
            out_path = next();
        else if (arg == "--sizes") {
            if (!PageSizeHierarchy::parse(next(), sizes)) {
                std::fprintf(stderr, "mosaic_fuzz: bad --sizes spec\n");
                return 2;
            }
        } else if (arg == "--colt")
            colt = true;
        else if (arg == "--checkpoint-every")
            ckpt_every = static_cast<std::size_t>(u64(1, 1u << 24));
        else
            return usage();
    }
    if (manager != "mosaic" && manager != "gpummu" &&
        manager != "largeonly")
        return usage();
    if (apps == 0 || apps > 8)
        return usage();

    if (!replay_path.empty()) {
        FuzzConfig cfg;
        if (!readSchedule(replay_path, cfg))
            return 2;
        return runAndReport(std::move(cfg), seed, out_path, shards,
                            ckpt_every);
    }

    if (smoke) {
        int rc = 0;
        for (const char *m : {"mosaic", "gpummu", "largeonly"}) {
            for (const bool over : {false, true}) {
                FuzzConfig cfg =
                    generate(seed, ops, m, over, apps, sizes, colt);
                rc |= runAndReport(std::move(cfg), seed, out_path, shards,
                                   ckpt_every);
            }
        }
        return rc;
    }

    FuzzConfig cfg =
        generate(seed, ops, manager, oversubscribe, apps, sizes, colt);
    return runAndReport(std::move(cfg), seed, out_path, shards, ckpt_every);
}
