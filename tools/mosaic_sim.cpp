/**
 * @file
 * Command-line driver for one-off simulations.
 *
 * Examples:
 *   mosaic_sim --workload hom:HISTO:2 --config mosaic
 *   mosaic_sim --workload het:4:42 --config baseline --scale 0.5
 *   mosaic_sim --workload hom:NW:1 --config mosaic --frag 0.95 \
 *              --occ 0.25 --churn --tight-memory
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/parse_num.h"
#include "runner/json_report.h"
#include "runner/report.h"
#include "runner/simulation.h"
#include "trace/trace_export.h"
#include "workload/apps.h"
#include "workload/workload.h"

namespace {

using namespace mosaic;

void
usage()
{
    std::printf(
        "mosaic_sim -- run one simulation of the Mosaic GPU memory "
        "manager\n\n"
        "  --workload hom:<APP>:<N> | het:<N>:<SEED>   (default hom:HISTO:2)\n"
        "  --config baseline|mosaic|ideal|large        (default mosaic)\n"
        "  --scale <f>            working-set scale factor (default 0.25)\n"
        "  --instr <n>            instructions per warp (default 700)\n"
        "  --warps <n>            warps per SM (default 16)\n"
        "  --sms <n>              number of SMs (default 30)\n"
        "  --io-compression <f>   PCIe time compression (default 16)\n"
        "  --no-paging [charged]  prefetch instead of demand paging\n"
        "  --frag <f> --occ <f>   pre-fragmentation (Mosaic only)\n"
        "  --churn                enable allocation churn\n"
        "  --tight-memory         DRAM = ~8x working set\n"
        "  --no-cac | --cac-bc | --cac-ideal\n"
        "  --sizes <list>         page-size hierarchy, smallest first, as\n"
        "                         a comma list of sizes with K/M suffixes\n"
        "                         (default 4K,2M; e.g. Trident 4K,64K,2M)\n"
        "  --colt                 coalesced (CoLT) base-TLB entries\n"
        "  --rr                   round-robin warp scheduler\n"
        "  --seed <n>             simulation seed (default 1)\n"
        "  --shards <n>           run the sharded engine with <n> worker\n"
        "                         threads (default 0 = serial engine;\n"
        "                         env MOSAIC_SIM_SHARDS also works)\n"
        "  --weighted-speedup     also run per-app alone baselines\n"
        "  --json                 emit the result as JSON instead of text\n"
        "  --metrics-json <path>  write the full metrics registry snapshot\n"
        "                         (plus any interval samples) to <path>\n"
        "  --metrics-sample <n>   sample all metrics every <n> cycles\n"
        "  --trace-out <path>     record an event trace and write it to\n"
        "                         <path> as Chrome Trace Event JSON\n"
        "                         (open in https://ui.perfetto.dev)\n"
        "  --trace-categories <spec>  categories to record: 'all', a\n"
        "                         numeric mask, or a comma list of\n"
        "                         engine,vm,mm,io,dram,counter\n"
        "                         (default all; needs --trace-out)\n"
        "  --checkpoint-at <n>    save a checkpoint at the first quiesce\n"
        "                         point at-or-after cycle <n>; repeatable,\n"
        "                         pairs with the matching --checkpoint-out\n"
        "  --checkpoint-out <path> output path for the most recent\n"
        "                         --checkpoint-at (required, one each)\n"
        "  --restore <path>       resume from a checkpoint image (the\n"
        "                         config must match the one that saved it)\n"
        "  --list-apps            print the application catalog\n"
        "  --help                 print this message\n");
}

bool
match(const char *arg, const char *flag)
{
    return std::strcmp(arg, flag) == 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string workload_spec = "hom:HISTO:2";
    std::string config_name = "mosaic";
    double scale = 0.25;
    std::uint64_t instr = 700;
    unsigned warps = 16;
    unsigned sms = 30;
    double io_comp = 16.0;
    bool no_paging = false, charged = false;
    double frag = 0.0, occ = 0.0;
    bool churn = false, tight = false;
    bool no_cac = false, cac_bc = false, cac_ideal = false, rr = false;
    std::string sizes_spec;
    bool colt = false;
    std::uint64_t seed = 1;
    unsigned shards = 0;
    bool weighted = false;
    bool json = false;
    std::string metrics_json_path;
    Cycles metrics_sample = 0;
    std::string trace_out_path;
    std::string trace_categories_spec;
    std::vector<std::pair<Cycles, std::string>> checkpoints;
    bool checkpoint_at_pending = false;
    std::string restore_path;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "flag %s requires a value\n\n", flag);
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        // Checked numeric values: the whole string must parse and land
        // inside the flag's accepted range; anything else is a usage
        // error (atoi used to turn garbage into silent zeros and
        // negatives into huge unsigned values).
        auto u64 = [&](const char *flag, std::uint64_t lo,
                       std::uint64_t hi) -> std::uint64_t {
            std::uint64_t v = 0;
            if (!parseFlagU64(flag, next(flag), lo, hi, &v)) {
                std::fprintf(stderr, "\n");
                usage();
                std::exit(1);
            }
            return v;
        };
        auto f64 = [&](const char *flag, double lo, double hi) -> double {
            double v = 0.0;
            if (!parseFlagF64(flag, next(flag), lo, hi, &v)) {
                std::fprintf(stderr, "\n");
                usage();
                std::exit(1);
            }
            return v;
        };
        if (match(a, "--help")) {
            usage();
            return 0;
        } else if (match(a, "--list-apps")) {
            for (const AppParams &app : appCatalog()) {
                std::printf("%-8s %4llu MB, %2zu buffers\n",
                            app.name.c_str(),
                            static_cast<unsigned long long>(
                                app.workingSetBytes() >> 20),
                            app.bufferSizes.size());
            }
            return 0;
        } else if (match(a, "--workload")) {
            workload_spec = next("--workload");
        } else if (match(a, "--config")) {
            config_name = next("--config");
        } else if (match(a, "--scale")) {
            scale = f64("--scale", 1e-6, 1e6);
        } else if (match(a, "--instr")) {
            instr = u64("--instr", 1, 1ull << 40);
        } else if (match(a, "--warps")) {
            warps = static_cast<unsigned>(u64("--warps", 1, 1024));
        } else if (match(a, "--sms")) {
            sms = static_cast<unsigned>(u64("--sms", 1, 4096));
        } else if (match(a, "--io-compression")) {
            io_comp = f64("--io-compression", 1e-3, 1e6);
        } else if (match(a, "--no-paging")) {
            no_paging = true;
            if (i + 1 < argc && match(argv[i + 1], "charged")) {
                charged = true;
                ++i;
            }
        } else if (match(a, "--frag")) {
            frag = f64("--frag", 0.0, 1.0);
        } else if (match(a, "--occ")) {
            occ = f64("--occ", 0.0, 1.0);
        } else if (match(a, "--churn")) {
            churn = true;
        } else if (match(a, "--tight-memory")) {
            tight = true;
        } else if (match(a, "--no-cac")) {
            no_cac = true;
        } else if (match(a, "--cac-bc")) {
            cac_bc = true;
        } else if (match(a, "--cac-ideal")) {
            cac_ideal = true;
        } else if (match(a, "--sizes")) {
            sizes_spec = next("--sizes");
        } else if (match(a, "--colt")) {
            colt = true;
        } else if (match(a, "--rr")) {
            rr = true;
        } else if (match(a, "--seed")) {
            seed = u64("--seed", 0, UINT64_MAX);
        } else if (match(a, "--shards")) {
            shards = static_cast<unsigned>(u64("--shards", 0, 256));
        } else if (match(a, "--weighted-speedup")) {
            weighted = true;
        } else if (match(a, "--json")) {
            json = true;
        } else if (match(a, "--metrics-json")) {
            metrics_json_path = next("--metrics-json");
        } else if (match(a, "--metrics-sample")) {
            metrics_sample =
                static_cast<Cycles>(u64("--metrics-sample", 1, 1ull << 40));
        } else if (match(a, "--trace-out")) {
            trace_out_path = next("--trace-out");
        } else if (match(a, "--trace-categories")) {
            trace_categories_spec = next("--trace-categories");
        } else if (match(a, "--checkpoint-at")) {
            if (checkpoint_at_pending) {
                std::fprintf(stderr,
                             "--checkpoint-at needs a --checkpoint-out "
                             "before the next --checkpoint-at\n");
                return 1;
            }
            checkpoints.emplace_back(
                static_cast<Cycles>(
                    u64("--checkpoint-at", 0, 1ull << 62)),
                std::string());
            checkpoint_at_pending = true;
        } else if (match(a, "--checkpoint-out")) {
            if (!checkpoint_at_pending) {
                std::fprintf(stderr,
                             "--checkpoint-out needs a preceding "
                             "--checkpoint-at <cycle>\n");
                return 1;
            }
            checkpoints.back().second = next("--checkpoint-out");
            checkpoint_at_pending = false;
        } else if (match(a, "--restore")) {
            restore_path = next("--restore");
        } else {
            std::fprintf(stderr, "unknown flag %s\n\n", a);
            usage();
            return 1;
        }
    }

    // Build the workload.
    Workload w;
    if (workload_spec.rfind("hom:", 0) == 0) {
        const auto rest = workload_spec.substr(4);
        const auto colon = rest.find(':');
        const std::string app = rest.substr(0, colon);
        std::uint64_t copies = 1;
        if (colon != std::string::npos &&
            !parseFlagU64("--workload hom copies", rest.c_str() + colon + 1,
                          1, 1024, &copies))
            return 1;
        w = homogeneousWorkload(app, static_cast<unsigned>(copies));
    } else if (workload_spec.rfind("het:", 0) == 0) {
        const auto rest = workload_spec.substr(4);
        const auto colon = rest.find(':');
        std::uint64_t n = 0;
        if (!parseFlagU64("--workload het count",
                          rest.substr(0, colon).c_str(), 1, 1024, &n))
            return 1;
        std::uint64_t wseed = 42;
        if (colon != std::string::npos &&
            !parseFlagU64("--workload het seed", rest.c_str() + colon + 1, 0,
                          UINT64_MAX, &wseed))
            return 1;
        w = heterogeneousWorkload(static_cast<unsigned>(n), wseed);
    } else {
        std::fprintf(stderr, "bad --workload spec '%s'\n",
                     workload_spec.c_str());
        return 1;
    }
    w = scaledWorkload(w, scale);
    for (AppParams &app : w.apps)
        app.instrPerWarp = instr;

    // Build the configuration.
    SimConfig config;
    if (config_name == "baseline") {
        config = SimConfig::baseline();
    } else if (config_name == "mosaic") {
        config = SimConfig::mosaicDefault();
    } else if (config_name == "ideal") {
        config = SimConfig::idealTlb();
    } else if (config_name == "large") {
        config = SimConfig::largeOnly();
    } else {
        std::fprintf(stderr, "unknown --config '%s'\n",
                     config_name.c_str());
        return 1;
    }
    config.gpu.numSms = sms;
    config.gpu.sm.warpsPerSm = warps;
    if (rr)
        config.gpu.sm.scheduler = WarpSchedPolicy::RoundRobin;
    if (io_comp != 1.0)
        config = config.withIoCompression(io_comp);
    if (no_paging)
        config = config.withoutPaging(charged);
    config.fragmentationIndex = frag;
    config.fragmentationOccupancy = occ;
    config.churn.enabled = churn;
    config.mosaic.cac.enabled = !no_cac;
    config.mosaic.cac.useBulkCopy = cac_bc;
    config.mosaic.cac.ideal = cac_ideal;
    if (!sizes_spec.empty() || colt) {
        PageSizeHierarchy hierarchy;
        if (!sizes_spec.empty() &&
            !PageSizeHierarchy::parse(sizes_spec, hierarchy)) {
            std::fprintf(stderr,
                         "bad --sizes spec '%s' (want up to %u "
                         "strictly-ascending sizes, smallest first, "
                         "e.g. 4K,64K,2M with a 2M top)\n",
                         sizes_spec.c_str(),
                         PageSizeHierarchy::kMaxSizeLevels);
            return 1;
        }
        config = config.withSizeHierarchy(hierarchy, colt);
    }
    config.seed = seed;
    if (shards > 0)
        config = config.withEngineShards(shards);
    if (metrics_sample > 0)
        config = config.withMetricsSampling(metrics_sample);
    if (!trace_categories_spec.empty() && trace_out_path.empty()) {
        std::fprintf(stderr,
                     "--trace-categories needs --trace-out <path>\n");
        return 1;
    }
    if (!trace_out_path.empty()) {
        std::uint32_t categories = kTraceAll;
        if (!trace_categories_spec.empty() &&
            !parseTraceCategories(trace_categories_spec, &categories)) {
            std::fprintf(stderr,
                         "bad --trace-categories spec '%s' (want 'all', a "
                         "numeric mask, or names from "
                         "engine,vm,mm,io,dram,counter)\n",
                         trace_categories_spec.c_str());
            return 1;
        }
        config = config.withTracing(categories);
    }
    if (checkpoint_at_pending) {
        std::fprintf(stderr,
                     "--checkpoint-at %llu has no --checkpoint-out\n",
                     static_cast<unsigned long long>(
                         checkpoints.back().first));
        return 1;
    }
    for (const auto &ck : checkpoints)
        config = config.withCheckpointAt(ck.first, ck.second);
    if (!restore_path.empty())
        config = config.withRestoreFrom(restore_path);
    if (tight) {
        config.pageTablePoolBytes = 16ull << 20;
        config.dram.capacityBytes = std::max<std::uint64_t>(
            roundUp(w.workingSetBytes() * 8, kLargePageSize) +
                config.pageTablePoolBytes + (8ull << 20),
            64ull << 20);
    }

    const SimResult result = [&] {
        if (!json)
            printConfigBanner(config);
        SimResult r = runSimulation(w, config);
        if (json)
            std::printf("%s\n", toJson(r).c_str());
        else
            printSimResult(r);
        return r;
    }();

    if (!trace_out_path.empty()) {
        if (result.trace == nullptr ||
            !writeChromeTraceFile(*result.trace, trace_out_path,
                                  config.label)) {
            std::fprintf(stderr, "failed to write trace to %s\n",
                         trace_out_path.c_str());
            return 1;
        }
        if (!json)
            std::printf("trace written to %s (%llu events, %llu dropped)\n",
                        trace_out_path.c_str(),
                        static_cast<unsigned long long>(
                            result.trace->size()),
                        static_cast<unsigned long long>(
                            result.trace->dropped()));
    }

    if (!metrics_json_path.empty()) {
        if (!writeMetricsJson(result, metrics_json_path,
                              managerKindName(config.manager)))
            return 1;
        if (!json)
            std::printf("metrics written to %s\n",
                        metrics_json_path.c_str());
    }

    if (weighted) {
        const auto alone = aloneIpcs(w, config);
        std::printf("weighted speedup: %.3f\n",
                    weightedSpeedupOf(result, alone));
    }
    return 0;
}
