#!/usr/bin/env python3
"""CI perf smoke: sanity-check benchmark JSON and print/gate deltas.

Usage: perf_smoke_delta.py [--fail-below PCT] [--shard-json FILE]
                           BENCH_hotpath.json NAME=RESULT.json [...]

Each RESULT.json is a google-benchmark --benchmark_format=json output;
NAME selects the matching section of BENCH_hotpath.json (the committed
reference numbers). The script fails if a result file is not valid JSON,
has no benchmarks, or reports a non-positive items_per_second -- i.e. the
bench did not actually run.

--fail-below PCT adds a soft perf gate: a benchmark whose items_per_second
falls more than PCT percent below its committed post_items_per_second
fails the run. The tolerance should stay generous (50+): CI machines
differ wildly from the machine that produced the committed numbers, so
the gate only catches order-of-magnitude collapses, not few-percent
drift. Without the flag, deltas are informational as before.

--shard-json FILE validates a BENCH_shard.json produced by
bench/shard_scaling (schema + positive throughput per run) and prints
the scaling curve. The speedup column is informational: it is only
meaningful when the recorded host_cores covers the worker count.
"""

import argparse
import json
import sys


def load_items(path):
    with open(path) as f:
        data = json.load(f)
    benches = data.get("benchmarks", [])
    items = {
        b["name"]: b["items_per_second"]
        for b in benches
        if "items_per_second" in b and not b["name"].endswith(("_mean", "_median", "_stddev", "_cv"))
    }
    if not items:
        sys.exit(f"{path}: no benchmarks with items_per_second -- bench did not run?")
    for name, rate in items.items():
        if not rate > 0:
            sys.exit(f"{path}: {name} reports items_per_second={rate}")
    return items


def check_shard_json(path):
    with open(path) as f:
        data = json.load(f)
    runs = data.get("runs", [])
    if not runs:
        sys.exit(f"{path}: no runs recorded -- shard_scaling did not run?")
    cores = data.get("host_cores", 0)
    print(f"== shard scaling ({path}, host_cores={cores}) ==")
    for run in runs:
        for key in ("shards", "wall_seconds", "sim_cycles_per_second"):
            if key not in run:
                sys.exit(f"{path}: run record missing '{key}'")
        if not run["sim_cycles_per_second"] > 0:
            sys.exit(f"{path}: shards={run['shards']} reports no throughput")
        meaningful = cores >= max(1, run["shards"])
        print(
            f"  shards={run['shards']}: {run['wall_seconds']:.3f}s wall, "
            f"{run['sim_cycles_per_second']:.3g} sim cycles/s, "
            f"speedup {run.get('speedup_vs_serial', 0):.2f}x"
            + ("" if meaningful else " (host has too few cores; informational)")
        )


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--fail-below", type=float, default=None, metavar="PCT",
                        help="fail if a bench is more than PCT%% below its "
                             "committed reference (keep generous, e.g. 75)")
    parser.add_argument("--shard-json", default=None, metavar="FILE",
                        help="validate and print a BENCH_shard.json scaling curve")
    parser.add_argument("reference", help="committed reference JSON (BENCH_hotpath.json)")
    parser.add_argument("specs", nargs="*", metavar="NAME=RESULT.json")
    args = parser.parse_args(argv[1:])

    with open(args.reference) as f:
        reference = json.load(f)

    failures = []
    for spec in args.specs:
        name, _, path = spec.partition("=")
        items = load_items(path)
        ref = reference.get(name, {})
        print(f"== {name} ({len(items)} benchmarks) vs committed reference ==")
        for bench, rate in items.items():
            committed = ref.get(bench, {}).get("post_items_per_second")
            if committed:
                delta = (rate / committed - 1) * 100
                print(f"  {bench}: {rate:.3e} items/s ({delta:+.1f}% vs reference {committed:.3e})")
                if args.fail_below is not None and delta < -args.fail_below:
                    failures.append(f"{name}/{bench}: {delta:+.1f}% "
                                    f"(limit -{args.fail_below:.0f}%)")
            else:
                print(f"  {bench}: {rate:.3e} items/s (no committed reference)")

    if args.shard_json:
        check_shard_json(args.shard_json)

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        sys.exit(f"perf smoke: {len(failures)} benchmark(s) below the "
                 f"--fail-below {args.fail_below:.0f}% tolerance")
    if args.fail_below is not None:
        print(f"perf smoke OK (all benches within {args.fail_below:.0f}% of reference)")
    else:
        print("perf smoke OK (deltas are informational; no threshold gate)")


if __name__ == "__main__":
    main(sys.argv)
