#!/usr/bin/env python3
"""CI perf smoke: sanity-check benchmark JSON and print deltas.

Usage: perf_smoke_delta.py BENCH_hotpath.json NAME=RESULT.json [NAME=RESULT.json ...]

Each RESULT.json is a google-benchmark --benchmark_format=json output;
NAME selects the matching section of BENCH_hotpath.json (the committed
reference numbers). The script fails if a result file is not valid JSON,
has no benchmarks, or reports a non-positive items_per_second -- i.e. the
bench did not actually run. It never fails on slow numbers: CI machines
vary too much for a hard threshold, so deltas are informational.
"""

import json
import sys


def load_items(path):
    with open(path) as f:
        data = json.load(f)
    benches = data.get("benchmarks", [])
    items = {
        b["name"]: b["items_per_second"]
        for b in benches
        if "items_per_second" in b and not b["name"].endswith(("_mean", "_median", "_stddev", "_cv"))
    }
    if not items:
        sys.exit(f"{path}: no benchmarks with items_per_second -- bench did not run?")
    for name, rate in items.items():
        if not rate > 0:
            sys.exit(f"{path}: {name} reports items_per_second={rate}")
    return items


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__)
    with open(argv[1]) as f:
        reference = json.load(f)

    for spec in argv[2:]:
        name, _, path = spec.partition("=")
        items = load_items(path)
        ref = reference.get(name, {})
        print(f"== {name} ({len(items)} benchmarks) vs committed reference ==")
        for bench, rate in items.items():
            committed = ref.get(bench, {}).get("post_items_per_second")
            if committed:
                delta = (rate / committed - 1) * 100
                print(f"  {bench}: {rate:.3e} items/s ({delta:+.1f}% vs reference {committed:.3e})")
            else:
                print(f"  {bench}: {rate:.3e} items/s (no committed reference)")
    print("perf smoke OK (deltas are informational; no threshold gate)")


if __name__ == "__main__":
    main(sys.argv)
