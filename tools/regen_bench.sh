#!/bin/sh
# Regenerates bench_output.txt (the full benchmark tables EXPERIMENTS.md
# refers to; the file is machine-specific, so it is .gitignore'd rather
# than committed).
#
# Usage: tools/regen_bench.sh [build-dir] [output-file]
#
# Runs every figure/table bench serially, then the google-benchmark
# micros with a short min-time. MOSAIC_BENCH_FULL=1 switches the figure
# benches to the full 27-application profile (slow).
set -eu

build_dir=${1:-build}
out=${2:-bench_output.txt}

if [ ! -d "$build_dir/bench" ]; then
    echo "error: $build_dir/bench not found; build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
    exit 1
fi

: > "$out"
for b in "$build_dir"/bench/*; do
    [ -x "$b" ] || continue
    echo "== $(basename "$b") ==" | tee -a "$out"
    case "$(basename "$b")" in
    micro_*)
        "$b" --benchmark_min_time=0.05 >> "$out" 2>&1
        ;;
    shard_scaling)
        # Writes the sharded-engine scaling curve next to the committed
        # baseline; refresh the checked-in copy from a Release build.
        "$b" BENCH_shard.json >> "$out"
        ;;
    *)
        "$b" >> "$out"
        ;;
    esac
done
echo "wrote $out"
