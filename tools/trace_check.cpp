/**
 * @file
 * Trace replay validator: re-verifies simulator invariants from an
 * exported Chrome Trace Event document alone.
 *
 * Usage:  trace_check <trace.json> [--quiet] [--stats]
 *
 * Exits 0 when every invariant holds (see trace/trace_validate.h for
 * the list: document shape, frame-lifecycle state machine, async span
 * integrity, lane/track metadata, per-category drop accounting,
 * counter-vs-event cross-checks), non-zero otherwise. With --stats,
 * also prints per-span-name duration statistics (count, mean,
 * p50/p95/p99, max in simulated cycles).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/trace_validate.h"

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool quiet = false;
    bool stats = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            stats = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("trace_check -- replay a mosaic_sim trace and "
                        "re-verify its invariants\n\n"
                        "  trace_check <trace.json> [--quiet] [--stats]\n\n"
                        "  --quiet  suppress the summary line\n"
                        "  --stats  print per-span duration statistics "
                        "(count, mean, p50/p95/p99, max)\n");
            return 0;
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "unknown flag %s\n", argv[i]);
            return 2;
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: trace_check <trace.json> [--quiet] [--stats]\n");
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    const mosaic::TraceCheckResult r =
        mosaic::validateChromeTraceText(buf.str(), stats);

    for (const std::string &e : r.errors)
        std::fprintf(stderr, "error: %s\n", e.c_str());
    if (!quiet) {
        for (const std::string &n : r.notes)
            std::printf("note: %s\n", n.c_str());
        std::printf(
            "%s: %llu events (%llu dropped) on %u lanes, %llu walk spans, "
            "%llu frame lifecycles (%llu complete), "
            "%llu coalesces / %llu splinters / %llu compactions, "
            "%llu violations, %llu counter samples, %llu open spans\n",
            path, static_cast<unsigned long long>(r.events),
            static_cast<unsigned long long>(r.dropped), r.lanes,
            static_cast<unsigned long long>(r.walkSpans),
            static_cast<unsigned long long>(r.frameLifecycles),
            static_cast<unsigned long long>(r.completeLifecycles),
            static_cast<unsigned long long>(r.coalesces),
            static_cast<unsigned long long>(r.splinters),
            static_cast<unsigned long long>(r.compactions),
            static_cast<unsigned long long>(r.violations),
            static_cast<unsigned long long>(r.counterSamples),
            static_cast<unsigned long long>(r.openSpans));
        for (const auto &[cat, n] : r.droppedByCategory)
            std::printf("dropped[%s]: %llu\n", cat.c_str(),
                        static_cast<unsigned long long>(n));
        if (stats) {
            std::printf("%-24s %10s %10s %10s %10s %10s %10s\n", "span",
                        "count", "mean", "p50", "p95", "p99", "max");
            for (const mosaic::SpanStats &s : r.spanStats)
                std::printf("%-24s %10llu %10.1f %10.1f %10.1f %10.1f "
                            "%10.1f\n",
                            s.name.c_str(),
                            static_cast<unsigned long long>(s.count), s.mean,
                            s.p50, s.p95, s.p99, s.max);
        }
        if (r.ok)
            std::printf("OK\n");
        else
            std::printf("FAILED (%zu errors)\n", r.errors.size());
    }
    return r.ok ? 0 : 1;
}
